//! Per-request latency metrics for online serving runs: TTFT, TPOT,
//! end-to-end latency, their percentiles, and SLO/goodput accounting.
//!
//! Engines record one [`RequestTiming`] per completed request
//! (arrival, first-token, and completion timestamps in simulated
//! seconds); [`LatencyStats`] summarizes a timeline with nearest-rank
//! percentiles. SLO attainment and goodput — requests meeting a
//! TTFT/TPOT SLO per second — are the serving sweep's headline
//! metrics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Simulated-time timeline of one request's life.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestTiming {
    /// Request id.
    pub id: u64,
    /// When the request became available, seconds.
    pub arrival_s: f64,
    /// When its first output token was produced, seconds.
    pub first_token_s: f64,
    /// When its last output token was produced, seconds.
    pub completion_s: f64,
    /// Tokens generated (for TPOT normalization).
    pub output_len: usize,
    /// Dispatch attempts this request took to complete (1 = served on
    /// its first try; >1 = requeued after replica failures). Under
    /// retries, `arrival_s` stays the *first* arrival, so `ttft`/`e2e`
    /// include detection and backoff delays.
    pub attempts: u32,
}

impl RequestTiming {
    /// Time to first token: queueing + prefill, seconds.
    pub fn ttft(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Time per output token after the first (a.k.a. TBT), seconds.
    /// Zero for single-token outputs (no inter-token gap exists).
    pub fn tpot(&self) -> f64 {
        if self.output_len > 1 {
            (self.completion_s - self.first_token_s) / (self.output_len - 1) as f64
        } else {
            0.0
        }
    }

    /// End-to-end latency (arrival to last token), seconds.
    pub fn e2e(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// Nearest-rank percentile of `xs` (`p` in percent, 0 < p ≤ 100):
/// the smallest element with at least `p`% of the sample at or below
/// it. Input order is irrelevant (a sorted copy is taken). Returns
/// `None` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    Some(percentile_of_sorted(&sorted, p))
}

/// Nearest-rank percentile of an already-ascending non-empty sample.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(
        p > 0.0 && p <= 100.0 && p.is_finite(),
        "percentile must be in (0, 100], got {p}"
    );
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Five-number summary of one latency marginal (all seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank p50).
    pub p50: f64,
    /// Nearest-rank p90.
    pub p90: f64,
    /// Nearest-rank p99.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    /// Summarize a sample set; all-zero for an empty one (callers
    /// that must distinguish "no samples" from "all-zero latencies" —
    /// e.g. per-window slices of a day-long run — use
    /// [`LatencySummary::try_of`]).
    pub fn of(xs: &[f64]) -> Self {
        Self::try_of(xs)
            .unwrap_or(LatencySummary { mean: 0.0, p50: 0.0, p90: 0.0, p99: 0.0, max: 0.0 })
    }

    /// Summarize a sample set; `None` for an empty one — never a NaN
    /// mean or a fabricated zero percentile. Sorts the samples once
    /// and indexes every rank (summaries run on every engine report,
    /// so per-percentile re-sorting would be paid on the sweep hot
    /// path).
    pub fn try_of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
        Some(LatencySummary {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile_of_sorted(&sorted, 50.0),
            p90: percentile_of_sorted(&sorted, 90.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// How latency marginals are summarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SummaryMode {
    /// Exact nearest-rank percentiles over the materialized sample
    /// set (sort-based; the historical behaviour, kept byte-identical
    /// for tests and figures).
    #[default]
    Exact,
    /// Mergeable log-bucketed quantile sketch: bounded relative
    /// error, one streaming pass, and associative merge — per-replica
    /// summaries combine into fleet summaries without re-sorting
    /// timelines.
    Sketch,
}

impl std::fmt::Display for SummaryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SummaryMode::Exact => "exact",
            SummaryMode::Sketch => "sketch",
        })
    }
}

/// Natural log of the sketch's bucket growth factor (γ = 1.01):
/// consecutive bucket boundaries differ by 1%, so reporting a
/// bucket's geometric midpoint is at most `√γ − 1 ≈ 0.5%` away from
/// any sample in it — comfortably inside the 1% relative-error
/// budget the sketch promises.
const SKETCH_LN_GAMMA: f64 = 0.009_950_330_853_155_723;

/// Values below this (seconds) land in the sketch's zero bucket: a
/// latency under a nanosecond is indistinguishable from zero for
/// every consumer here, and an explicit floor keeps `ln` away from
/// `-inf`.
const SKETCH_MIN_S: f64 = 1e-9;

/// A deterministic mergeable quantile sketch over non-negative
/// latency samples (seconds).
///
/// Samples map to geometrically spaced buckets (`idx = ⌊ln v / ln γ⌋`
/// with γ = 1.01), so any quantile is answered to within ~0.5%
/// relative error from bucket counts alone. The state is pure counts
/// plus exact min/max, which makes merging **associative and
/// commutative to the byte**: `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` hold
/// identical state (unlike t-digest, whose centroid merges depend on
/// order). Every derived figure — quantiles *and* the mean — is
/// computed from the merged counts at render time, so it inherits
/// that associativity. Memory is one `(i32, u64)` entry per occupied
/// bucket (the full 1 ns – 10⁵ s range is ~2.6k buckets, but real
/// marginals occupy a few dozen).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySketch {
    /// Occupied buckets: `⌊ln v / ln γ⌋ → count`. Ordered, so walks
    /// are ascending and deterministic.
    buckets: BTreeMap<i32, u64>,
    /// Samples below [`SKETCH_MIN_S`] (zero latencies included).
    zeros: u64,
    /// Total samples.
    count: u64,
    /// Exact smallest sample (`+inf` when empty).
    min: f64,
    /// Exact largest sample (`-inf` when empty).
    max: f64,
}

impl LatencySketch {
    /// An empty sketch.
    pub fn new() -> Self {
        LatencySketch {
            buckets: BTreeMap::new(),
            zeros: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Sketch a whole sample set.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Record one sample. Panics on non-finite or negative values —
    /// latencies are physical durations.
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite() && v >= 0.0, "latency samples must be finite and >= 0, got {v}");
        if v < SKETCH_MIN_S {
            self.zeros += 1;
        } else {
            let idx = (v.ln() / SKETCH_LN_GAMMA).floor() as i32;
            *self.buckets.entry(idx).or_insert(0) += 1;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another sketch in. Pure count addition plus min/max, so
    /// merge order can never change the result.
    pub fn merge(&mut self, other: &LatencySketch) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The representative value reported for a bucket: its geometric
    /// midpoint, clamped into the exactly-tracked `[min, max]` so
    /// tails never overshoot the sample range (and a single-valued
    /// sketch answers exactly).
    fn rep(&self, idx: i32) -> f64 {
        ((idx as f64 + 0.5) * SKETCH_LN_GAMMA).exp().clamp(self.min, self.max)
    }

    /// Nearest-rank quantile (`p` in percent, 0 < p ≤ 100) to within
    /// the sketch's relative-error bound; `None` when empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!(
            p > 0.0 && p <= 100.0 && p.is_finite(),
            "percentile must be in (0, 100], got {p}"
        );
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = self.zeros;
        if rank <= seen {
            return Some(0.0f64.clamp(self.min, self.max));
        }
        for (&idx, &n) in &self.buckets {
            seen += n;
            if rank <= seen {
                return Some(self.rep(idx));
            }
        }
        Some(self.max)
    }

    /// Mean to within the bucket-representative error, derived from
    /// merged counts at render time (so it is merge-associative,
    /// unlike a running f64 sum); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .map(|(&idx, &n)| n as f64 * self.rep(idx))
            .sum();
        Some(sum / self.count as f64)
    }

    /// The standard five-number summary, from the sketch; `None` when
    /// empty. `max` is exact; mean/percentiles carry the ≤1% bound.
    pub fn summary(&self) -> Option<LatencySummary> {
        if self.count == 0 {
            return None;
        }
        Some(LatencySummary {
            mean: self.mean().expect("non-empty"),
            p50: self.quantile(50.0).expect("non-empty"),
            p90: self.quantile(90.0).expect("non-empty"),
            p99: self.quantile(99.0).expect("non-empty"),
            max: self.max,
        })
    }

    /// Canonical rendering of the full sketch state. Two sketches
    /// holding the same merged state render identically, which is
    /// what the merge-associativity property tests compare.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "count={} zeros={} min={:e} max={:e}",
            self.count, self.zeros, self.min, self.max
        );
        for (&idx, &n) in &self.buckets {
            write!(out, " b{idx}={n}").expect("string write");
        }
        out
    }
}

/// Latency summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Requests summarized.
    pub count: usize,
    /// Time-to-first-token marginal.
    pub ttft: LatencySummary,
    /// Time-per-output-token marginal (multi-token requests only;
    /// single-token outputs have no inter-token gap).
    pub tpot: LatencySummary,
    /// End-to-end latency marginal.
    pub e2e: LatencySummary,
}

impl LatencyStats {
    /// Summarize a timeline; `None` when it is empty.
    pub fn from_timeline(timeline: &[RequestTiming]) -> Option<Self> {
        if timeline.is_empty() {
            return None;
        }
        let ttft: Vec<f64> = timeline.iter().map(RequestTiming::ttft).collect();
        let tpot: Vec<f64> = timeline
            .iter()
            .filter(|t| t.output_len > 1)
            .map(RequestTiming::tpot)
            .collect();
        let e2e: Vec<f64> = timeline.iter().map(RequestTiming::e2e).collect();
        Some(LatencyStats {
            count: timeline.len(),
            ttft: LatencySummary::of(&ttft),
            tpot: LatencySummary::of(&tpot),
            e2e: LatencySummary::of(&e2e),
        })
    }

    /// [`LatencyStats::from_timeline`] under a [`SummaryMode`]. Exact
    /// mode *is* `from_timeline` (delegation, so exact consumers stay
    /// byte-identical); sketch mode folds all three marginals in one
    /// pass with no sample vectors and no sorts.
    pub fn from_timeline_mode(timeline: &[RequestTiming], mode: SummaryMode) -> Option<Self> {
        match mode {
            SummaryMode::Exact => Self::from_timeline(timeline),
            SummaryMode::Sketch => {
                if timeline.is_empty() {
                    return None;
                }
                let mut ttft = LatencySketch::new();
                let mut tpot = LatencySketch::new();
                let mut e2e = LatencySketch::new();
                for t in timeline {
                    ttft.push(t.ttft());
                    if t.output_len > 1 {
                        tpot.push(t.tpot());
                    }
                    e2e.push(t.e2e());
                }
                let zero =
                    LatencySummary { mean: 0.0, p50: 0.0, p90: 0.0, p99: 0.0, max: 0.0 };
                Some(LatencyStats {
                    count: timeline.len(),
                    ttft: ttft.summary().unwrap_or(zero),
                    tpot: tpot.summary().unwrap_or(zero),
                    e2e: e2e.summary().unwrap_or(zero),
                })
            }
        }
    }
}

/// A latency service-level objective on TTFT and TPOT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Maximum acceptable time to first token, seconds.
    pub ttft_s: f64,
    /// Maximum acceptable time per output token, seconds.
    pub tpot_s: f64,
}

impl SloSpec {
    /// Whether one request met both objectives.
    pub fn met_by(&self, t: &RequestTiming) -> bool {
        t.ttft() <= self.ttft_s && t.tpot() <= self.tpot_s
    }

    /// Fraction of the timeline meeting the SLO (0.0 for an empty
    /// timeline).
    pub fn attainment(&self, timeline: &[RequestTiming]) -> f64 {
        if timeline.is_empty() {
            return 0.0;
        }
        let met = timeline.iter().filter(|t| self.met_by(t)).count();
        met as f64 / timeline.len() as f64
    }

    /// Goodput: SLO-meeting requests completed per second over
    /// `duration_s` (0.0 when no time elapsed).
    pub fn goodput_rps(&self, timeline: &[RequestTiming], duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            return 0.0;
        }
        timeline.iter().filter(|t| self.met_by(t)).count() as f64 / duration_s
    }
}

/// Serving metrics over one `[t0, t1)` slice of a timeline — the
/// per-window view a day-long autoscaling run is judged by.
///
/// A request is *attributed to the window its arrival falls in* for
/// attainment and latency (the user experienced that window's
/// congestion), and to the window its last token falls in for
/// goodput (work was delivered then). Windows with no arrivals carry
/// `None` — "no traffic" is not "0% attainment", and an all-`None`
/// quiet night must not drag a daily average down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowMetrics {
    /// Window start, seconds (inclusive).
    pub t0: f64,
    /// Window end, seconds (exclusive).
    pub t1: f64,
    /// Requests arriving in the window.
    pub arrivals: usize,
    /// Requests completing in the window.
    pub completions: usize,
    /// Fraction of the window's arrivals meeting the SLO; `None`
    /// when nothing arrived.
    pub attainment: Option<f64>,
    /// SLO-meeting completions per second over the window.
    pub goodput_rps: f64,
    /// TTFT summary of the window's arrivals; `None` when nothing
    /// arrived.
    pub ttft: Option<LatencySummary>,
}

/// Slice `timeline` into consecutive `window_s`-second windows from
/// t = 0 and compute [`WindowMetrics`] per window. Windows extend to
/// `horizon_s` at least (trailing quiet windows included, so a
/// controller's window axis and the metric axis line up), and further
/// if any completion lands past the horizon. An empty timeline with a
/// positive horizon yields all-quiet windows; `window_s` must be
/// finite and positive.
pub fn windowed_metrics(
    timeline: &[RequestTiming],
    slo: SloSpec,
    window_s: f64,
    horizon_s: f64,
) -> Vec<WindowMetrics> {
    assert!(
        window_s.is_finite() && window_s > 0.0,
        "window length must be finite and > 0, got {window_s}"
    );
    assert!(
        horizon_s.is_finite() && horizon_s >= 0.0,
        "horizon must be finite and >= 0, got {horizon_s}"
    );
    let span = timeline
        .iter()
        .map(|t| t.completion_s)
        .fold(horizon_s, f64::max);
    let n_windows = (span / window_s).ceil() as usize;
    // A non-empty timeline always needs a window to land in, even
    // when every timestamp is 0 (span 0 would otherwise allocate
    // zero windows and the attribution below would index out of
    // bounds).
    let n_windows = n_windows.max(usize::from(span > 0.0 || !timeline.is_empty()));
    let idx = |t: f64| -> usize { ((t / window_s) as usize).min(n_windows.saturating_sub(1)) };
    let mut arrivals = vec![0usize; n_windows];
    let mut met_arrivals = vec![0usize; n_windows];
    let mut completions = vec![0usize; n_windows];
    let mut met_completions = vec![0usize; n_windows];
    let mut ttfts: Vec<Vec<f64>> = vec![Vec::new(); n_windows];
    for t in timeline {
        let met = slo.met_by(t);
        let aw = idx(t.arrival_s);
        arrivals[aw] += 1;
        met_arrivals[aw] += usize::from(met);
        ttfts[aw].push(t.ttft());
        let cw = idx(t.completion_s);
        completions[cw] += 1;
        met_completions[cw] += usize::from(met);
    }
    (0..n_windows)
        .map(|w| WindowMetrics {
            t0: w as f64 * window_s,
            t1: (w + 1) as f64 * window_s,
            arrivals: arrivals[w],
            completions: completions[w],
            attainment: (arrivals[w] > 0)
                .then(|| met_arrivals[w] as f64 / arrivals[w] as f64),
            goodput_rps: met_completions[w] as f64 / window_s,
            ttft: LatencySummary::try_of(&ttfts[w]),
        })
        .collect()
}

/// Per-window TTFT samples, by summary mode.
#[derive(Debug, Clone)]
enum WindowTtft {
    /// Materialized samples, summarized by sort at finish — the exact
    /// path, equal to [`windowed_metrics`] output.
    Exact(Vec<f64>),
    /// Streaming sketch — constant state per window.
    Sketch(LatencySketch),
}

impl WindowTtft {
    fn empty(mode: SummaryMode) -> Self {
        match mode {
            SummaryMode::Exact => WindowTtft::Exact(Vec::new()),
            SummaryMode::Sketch => WindowTtft::Sketch(LatencySketch::new()),
        }
    }

    fn push(&mut self, v: f64) {
        match self {
            WindowTtft::Exact(xs) => xs.push(v),
            WindowTtft::Sketch(s) => s.push(v),
        }
    }

    fn absorb(&mut self, other: WindowTtft) {
        match (self, other) {
            (WindowTtft::Exact(a), WindowTtft::Exact(b)) => a.extend(b),
            (WindowTtft::Sketch(a), WindowTtft::Sketch(b)) => a.merge(&b),
            _ => unreachable!("one accumulator, one mode"),
        }
    }

    fn summary(&self) -> Option<LatencySummary> {
        match self {
            WindowTtft::Exact(xs) => LatencySummary::try_of(xs),
            WindowTtft::Sketch(s) => s.summary(),
        }
    }
}

/// One window's streaming tallies.
#[derive(Debug, Clone)]
struct WindowCell {
    arrivals: usize,
    met_arrivals: usize,
    completions: usize,
    met_completions: usize,
    ttft: WindowTtft,
}

impl WindowCell {
    fn empty(mode: SummaryMode) -> Self {
        WindowCell {
            arrivals: 0,
            met_arrivals: 0,
            completions: 0,
            met_completions: 0,
            ttft: WindowTtft::empty(mode),
        }
    }
}

/// Streaming replacement for the post-hoc [`windowed_metrics`] pass:
/// completions fold in one at a time (in any order — per replica, per
/// attempt, as a causal loop produces them), and
/// [`WindowAccumulator::finish`] renders the same per-window
/// attainment / goodput / TTFT axis without ever materializing or
/// re-walking the merged timeline.
///
/// In [`SummaryMode::Exact`] the output equals `windowed_metrics` on
/// the same timeline **exactly** (property-tested), including the
/// empty-window `None` semantics and the clamp-into-last-window
/// boundary behaviour; `windowed_metrics` stays as the oracle. In
/// [`SummaryMode::Sketch`] per-window TTFT summaries come from
/// mergeable sketches instead of sorted sample vectors.
#[derive(Debug, Clone)]
pub struct WindowAccumulator {
    slo: SloSpec,
    window_s: f64,
    mode: SummaryMode,
    /// Dense per-window tallies, grown on demand; raw (unclamped)
    /// window indices — `finish` folds any overhang into the final
    /// window exactly like the oracle's index clamp.
    cells: Vec<WindowCell>,
    /// Largest completion time seen — sets the axis span.
    span_s: f64,
    /// Whether anything was pushed (a timeline of all-zero timestamps
    /// still needs one window).
    nonempty: bool,
}

impl WindowAccumulator {
    /// An empty accumulator over `window_s`-second windows from t = 0.
    pub fn new(slo: SloSpec, window_s: f64, mode: SummaryMode) -> Self {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "window length must be finite and > 0, got {window_s}"
        );
        WindowAccumulator { slo, window_s, mode, cells: Vec::new(), span_s: 0.0, nonempty: false }
    }

    /// The summary mode the accumulator renders with.
    pub fn mode(&self) -> SummaryMode {
        self.mode
    }

    fn cell(&mut self, idx: usize) -> &mut WindowCell {
        if idx >= self.cells.len() {
            self.cells.resize_with(idx + 1, || WindowCell::empty(self.mode));
        }
        &mut self.cells[idx]
    }

    /// Fold one completed request in: attainment/TTFT attribute to
    /// its arrival window, goodput to its completion window.
    pub fn push(&mut self, t: &RequestTiming) {
        let met = self.slo.met_by(t);
        self.nonempty = true;
        self.span_s = self.span_s.max(t.completion_s);
        let aw = (t.arrival_s / self.window_s) as usize;
        let ttft = t.ttft();
        let arrival = self.cell(aw);
        arrival.arrivals += 1;
        arrival.met_arrivals += usize::from(met);
        arrival.ttft.push(ttft);
        let cw = (t.completion_s / self.window_s) as usize;
        let completion = self.cell(cw);
        completion.completions += 1;
        completion.met_completions += usize::from(met);
    }

    /// Fold a whole timeline in.
    pub fn observe(&mut self, timeline: &[RequestTiming]) {
        for t in timeline {
            self.push(t);
        }
    }

    /// Render the window axis: at least `⌈horizon_s / window_s⌉`
    /// windows (trailing quiet ones included), extended whenever a
    /// completion landed past the horizon — the same axis
    /// [`windowed_metrics`] computes post hoc.
    pub fn finish(mut self, horizon_s: f64) -> Vec<WindowMetrics> {
        assert!(
            horizon_s.is_finite() && horizon_s >= 0.0,
            "horizon must be finite and >= 0, got {horizon_s}"
        );
        let span = self.span_s.max(horizon_s);
        let n_windows = (span / self.window_s).ceil() as usize;
        let n_windows = n_windows.max(usize::from(span > 0.0 || self.nonempty));
        // The oracle clamps indices into `[0, n_windows)`; the
        // accumulator indexed raw, so fold any overhang (at most one
        // window, from completions exactly on the final boundary)
        // back into the last window.
        while self.cells.len() > n_windows {
            let tail = self.cells.pop().expect("len checked");
            let last = self.cells.len() - 1;
            let into = &mut self.cells[last];
            into.arrivals += tail.arrivals;
            into.met_arrivals += tail.met_arrivals;
            into.completions += tail.completions;
            into.met_completions += tail.met_completions;
            into.ttft.absorb(tail.ttft);
        }
        while self.cells.len() < n_windows {
            self.cells.push(WindowCell::empty(self.mode));
        }
        let window_s = self.window_s;
        self.cells
            .into_iter()
            .enumerate()
            .map(|(w, c)| WindowMetrics {
                t0: w as f64 * window_s,
                t1: (w + 1) as f64 * window_s,
                arrivals: c.arrivals,
                completions: c.completions,
                attainment: (c.arrivals > 0)
                    .then(|| c.met_arrivals as f64 / c.arrivals as f64),
                goodput_rps: c.met_completions as f64 / window_s,
                ttft: c.ttft.summary(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(id: u64, arrival: f64, first: f64, done: f64, out: usize) -> RequestTiming {
        RequestTiming {
            id,
            arrival_s: arrival,
            first_token_s: first,
            completion_s: done,
            output_len: out,
            attempts: 1,
        }
    }

    #[test]
    fn per_request_metrics() {
        let t = timing(0, 1.0, 1.5, 3.5, 5);
        assert!((t.ttft() - 0.5).abs() < 1e-12);
        assert!((t.tpot() - 0.5).abs() < 1e-12);
        assert!((t.e2e() - 2.5).abs() < 1e-12);
        // Single-token outputs have no inter-token gap.
        assert_eq!(timing(1, 0.0, 2.0, 2.0, 1).tpot(), 0.0);
    }

    #[test]
    fn percentile_nearest_rank_n1() {
        assert_eq!(percentile(&[3.0], 50.0), Some(3.0));
        assert_eq!(percentile(&[3.0], 99.0), Some(3.0));
        assert_eq!(percentile(&[3.0], 100.0), Some(3.0));
    }

    #[test]
    fn percentile_nearest_rank_n2() {
        // rank = ceil(0.5 * 2) = 1 -> lower element.
        assert_eq!(percentile(&[1.0, 2.0], 50.0), Some(1.0));
        // rank = ceil(0.9 * 2) = 2 -> upper element.
        assert_eq!(percentile(&[1.0, 2.0], 90.0), Some(2.0));
        assert_eq!(percentile(&[1.0, 2.0], 100.0), Some(2.0));
    }

    #[test]
    fn percentile_handles_ties_and_unsorted_input() {
        let xs = [5.0, 1.0, 5.0, 2.0, 5.0];
        assert_eq!(percentile(&xs, 50.0), Some(5.0));
        assert_eq!(percentile(&xs, 20.0), Some(1.0));
        assert_eq!(percentile(&xs, 99.0), Some(5.0));
        let all_same = [7.0; 9];
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(percentile(&all_same, p), Some(7.0));
        }
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_p99_picks_tail_of_100() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 99.0), Some(99.0));
        assert_eq!(percentile(&xs, 50.0), Some(50.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_rejects_zero_p() {
        percentile(&[1.0], 0.0);
    }

    #[test]
    fn stats_from_timeline() {
        let tl = vec![
            timing(0, 0.0, 1.0, 2.0, 11),
            timing(1, 0.5, 1.0, 3.0, 21),
            timing(2, 1.0, 4.0, 4.0, 1),
        ];
        let s = LatencyStats::from_timeline(&tl).unwrap();
        assert_eq!(s.count, 3);
        // TTFTs: 1.0, 0.5, 3.0 -> p50 = 1.0, max = 3.0.
        assert_eq!(s.ttft.p50, 1.0);
        assert_eq!(s.ttft.max, 3.0);
        // TPOT excludes the single-token request: 0.1, 0.1.
        assert!((s.tpot.p50 - 0.1).abs() < 1e-12);
        assert!((s.tpot.mean - 0.1).abs() < 1e-12);
        assert!(LatencyStats::from_timeline(&[]).is_none());
    }

    #[test]
    fn try_of_distinguishes_empty_from_zero() {
        assert_eq!(LatencySummary::try_of(&[]), None);
        let s = LatencySummary::try_of(&[0.0, 0.0]).unwrap();
        assert_eq!(s.max, 0.0);
        // `of` keeps its legacy all-zero behaviour for empty input.
        assert_eq!(LatencySummary::of(&[]).p99, 0.0);
        assert_eq!(
            LatencySummary::of(&[1.0, 2.0]),
            LatencySummary::try_of(&[1.0, 2.0]).unwrap()
        );
    }

    #[test]
    fn windowed_metrics_attribute_by_arrival_and_completion() {
        let slo = SloSpec { ttft_s: 1.0, tpot_s: 0.2 };
        let tl = vec![
            timing(0, 0.5, 1.0, 1.5, 11),  // arrives w0, completes w0; ttft 0.5, tpot 0.05 -> met
            timing(1, 1.5, 4.0, 4.5, 11),  // arrives w0, completes w2; ttft 2.5 -> missed
            timing(2, 2.5, 3.0, 5.5, 11),  // arrives w1, completes w2; tpot 0.25 -> missed
        ];
        let ws = windowed_metrics(&tl, slo, 2.0, 6.0);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].arrivals, 2);
        assert_eq!(ws[0].attainment, Some(0.5));
        assert_eq!(ws[0].completions, 1);
        assert!((ws[0].goodput_rps - 0.5).abs() < 1e-12, "one met completion / 2 s");
        assert_eq!(ws[1].arrivals, 1);
        assert_eq!(ws[1].attainment, Some(0.0));
        assert_eq!(ws[2].arrivals, 0);
        assert_eq!(ws[2].attainment, None, "no arrivals is not 0% attainment");
        assert_eq!(ws[2].ttft, None);
        assert_eq!(ws[2].completions, 2);
        assert_eq!(ws[2].goodput_rps, 0.0, "both window-2 completions missed the SLO");
        // TTFT summary covers the window's arrivals only.
        let t0 = ws[0].ttft.unwrap();
        assert!((t0.max - 2.5).abs() < 1e-12);
        assert!((t0.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn windowed_metrics_edge_cases() {
        let slo = SloSpec { ttft_s: 1.0, tpot_s: 0.2 };
        // Empty timeline, positive horizon: all-quiet windows, no NaN.
        let ws = windowed_metrics(&[], slo, 10.0, 25.0);
        assert_eq!(ws.len(), 3);
        for w in &ws {
            assert_eq!(w.attainment, None);
            assert_eq!(w.ttft, None);
            assert_eq!(w.goodput_rps, 0.0);
        }
        // Empty timeline, zero horizon: no windows at all.
        assert!(windowed_metrics(&[], slo, 10.0, 0.0).is_empty());
        // Non-empty timeline whose every timestamp is 0 with a zero
        // horizon still gets one window (regression: this indexed out
        // of bounds).
        let zeroed = vec![timing(0, 0.0, 0.0, 0.0, 1)];
        let ws = windowed_metrics(&zeroed, slo, 10.0, 0.0);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].arrivals, 1);
        assert_eq!(ws[0].completions, 1);
        // Completions past the horizon extend the window axis.
        let tl = vec![timing(0, 1.0, 2.0, 99.0, 5)];
        let ws = windowed_metrics(&tl, slo, 10.0, 20.0);
        assert_eq!(ws.len(), 10);
        assert_eq!(ws[9].completions, 1);
        // A completion exactly on the last boundary clamps into the
        // final window instead of indexing out of bounds.
        let tl = vec![timing(0, 0.0, 1.0, 20.0, 5)];
        let ws = windowed_metrics(&tl, slo, 10.0, 20.0);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[1].completions, 1);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn windowed_metrics_rejects_bad_window() {
        windowed_metrics(&[], SloSpec { ttft_s: 1.0, tpot_s: 1.0 }, 0.0, 10.0);
    }

    #[test]
    fn slo_attainment_and_goodput() {
        let slo = SloSpec { ttft_s: 1.0, tpot_s: 0.2 };
        let tl = vec![
            timing(0, 0.0, 0.5, 1.5, 11),  // ttft 0.5, tpot 0.1 -> met
            timing(1, 0.0, 2.0, 3.0, 11),  // ttft 2.0 -> missed
            timing(2, 0.0, 1.0, 6.0, 11),  // tpot 0.5 -> missed
            timing(3, 1.0, 1.5, 1.5, 1),   // ttft 0.5, single token -> met
        ];
        assert!((slo.attainment(&tl) - 0.5).abs() < 1e-12);
        assert!((slo.goodput_rps(&tl, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(slo.attainment(&[]), 0.0);
        assert_eq!(slo.goodput_rps(&tl, 0.0), 0.0);
    }
}
