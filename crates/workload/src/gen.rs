//! Seeded request generators matching the paper's workloads.

use crate::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A clipped length distribution for one marginal (input or output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LengthDist {
    /// Every sample is exactly this length (§6.5 sweeps).
    Constant(usize),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Minimum length.
        lo: usize,
        /// Maximum length.
        hi: usize,
    },
    /// Lognormal with the given median and log-space sigma, clipped to
    /// `[lo, hi]` — matches the skewed shapes in Figure 9.
    LogNormal {
        /// Median length (`exp(mu)`).
        median: f64,
        /// Log-space standard deviation.
        sigma: f64,
        /// Clip floor.
        lo: usize,
        /// Clip ceiling.
        hi: usize,
    },
}

impl LengthDist {
    fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            LengthDist::Constant(n) => n,
            LengthDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            LengthDist::LogNormal {
                median,
                sigma,
                lo,
                hi,
            } => {
                // Box–Muller: two uniforms -> one standard normal.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let x = (median.ln() + sigma * z).exp();
                (x.round() as usize).clamp(lo, hi)
            }
        }
    }
}

/// A seeded workload generator: one distribution per marginal.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    /// Name used in reports (e.g. `"sharegpt"`).
    pub name: String,
    /// Input (prompt) length distribution.
    pub input: LengthDist,
    /// Output (generation) length distribution.
    pub output: LengthDist,
    rng: StdRng,
    next_id: u64,
}

impl WorkloadGen {
    /// Generator with explicit marginals.
    pub fn new(name: impl Into<String>, input: LengthDist, output: LengthDist, seed: u64) -> Self {
        WorkloadGen {
            name: name.into(),
            input,
            output,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// ShareGPT-like chat workload: inputs and outputs of comparable,
    /// few-hundred-token length with a long tail (Figure 9b). The
    /// paper samples 2000 requests from this dataset.
    pub fn sharegpt(seed: u64) -> Self {
        Self::new(
            "sharegpt",
            LengthDist::LogNormal {
                median: 250.0,
                sigma: 0.9,
                lo: 4,
                hi: 4096,
            },
            LengthDist::LogNormal {
                median: 250.0,
                sigma: 0.75,
                lo: 4,
                hi: 2048,
            },
            seed,
        )
    }

    /// arxiv-summarization-like workload: multi-thousand-token inputs,
    /// short outputs (Figure 9a). The paper samples 500 requests.
    pub fn arxiv_summarization(seed: u64) -> Self {
        Self::new(
            "arxiv",
            LengthDist::LogNormal {
                median: 3000.0,
                sigma: 0.35,
                lo: 512,
                hi: 6000,
            },
            LengthDist::LogNormal {
                median: 180.0,
                sigma: 0.5,
                lo: 16,
                hi: 1024,
            },
            seed,
        )
    }

    /// Constant-length workload (§6.5: fixed 3000-token inputs with a
    /// swept output length).
    pub fn constant(input_len: usize, output_len: usize) -> Self {
        Self::new(
            format!("const-{input_len}x{output_len}"),
            LengthDist::Constant(input_len),
            LengthDist::Constant(output_len),
            0,
        )
    }

    /// Generate the next `n` requests.
    pub fn generate(&mut self, n: usize) -> Vec<Request> {
        (0..n)
            .map(|_| {
                let id = self.next_id;
                self.next_id += 1;
                Request::new(
                    id,
                    self.input.sample(&mut self.rng).max(1),
                    self.output.sample(&mut self.rng).max(1),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::LengthStats;

    #[test]
    fn deterministic_for_same_seed() {
        let a = WorkloadGen::sharegpt(7).generate(100);
        let b = WorkloadGen::sharegpt(7).generate(100);
        assert_eq!(a, b);
        let c = WorkloadGen::sharegpt(8).generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn arxiv_inputs_dwarf_outputs() {
        // Figure 9a: summarization inputs are much longer than outputs.
        let reqs = WorkloadGen::arxiv_summarization(1).generate(500);
        let s = LengthStats::of(&reqs);
        assert!(
            s.mean_input > 8.0 * s.mean_output,
            "mean in {} vs out {}",
            s.mean_input,
            s.mean_output
        );
        assert!(s.mean_input > 2000.0 && s.mean_input < 4500.0);
    }

    #[test]
    fn sharegpt_lengths_comparable() {
        // Figure 9b: chat inputs and outputs have comparable scales.
        let reqs = WorkloadGen::sharegpt(1).generate(2000);
        let s = LengthStats::of(&reqs);
        let ratio = s.mean_input / s.mean_output;
        assert!(
            (0.5..=2.5).contains(&ratio),
            "in/out ratio {ratio} should be near 1"
        );
    }

    #[test]
    fn constant_workload_is_constant() {
        let reqs = WorkloadGen::constant(3000, 300).generate(50);
        assert!(reqs.iter().all(|r| r.input_len == 3000 && r.output_len == 300));
    }

    #[test]
    fn clipping_respected() {
        let mut g = WorkloadGen::new(
            "clip",
            LengthDist::LogNormal {
                median: 100.0,
                sigma: 3.0,
                lo: 50,
                hi: 200,
            },
            LengthDist::Uniform { lo: 1, hi: 10 },
            3,
        );
        for r in g.generate(1000) {
            assert!((50..=200).contains(&r.input_len));
            assert!((1..=10).contains(&r.output_len));
        }
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut g = WorkloadGen::sharegpt(0);
        let a = g.generate(10);
        let b = g.generate(10);
        assert_eq!(a.last().unwrap().id, 9);
        assert_eq!(b.first().unwrap().id, 10);
    }
}
