//! Seeded request generators matching the paper's workloads.

use crate::arrival::{ArrivalDist, ArrivalSampler};
use crate::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A clipped length distribution for one marginal (input or output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LengthDist {
    /// Every sample is exactly this length (§6.5 sweeps).
    Constant(usize),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Minimum length.
        lo: usize,
        /// Maximum length.
        hi: usize,
    },
    /// Lognormal with the given median and log-space sigma, clipped to
    /// `[lo, hi]` — matches the skewed shapes in Figure 9.
    LogNormal {
        /// Median length (`exp(mu)`).
        median: f64,
        /// Log-space standard deviation.
        sigma: f64,
        /// Clip floor.
        lo: usize,
        /// Clip ceiling.
        hi: usize,
    },
}

impl LengthDist {
    /// Validate the distribution's bounds. Sampling a `lo > hi` range
    /// panics deep inside `rng.gen_range` mid-generation; validating
    /// at [`WorkloadGen`] construction surfaces the mistake with a
    /// clear message instead.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            LengthDist::Constant(n) => {
                if n == 0 {
                    return Err("constant length must be at least 1 token".into());
                }
            }
            LengthDist::Uniform { lo, hi } => {
                if lo > hi {
                    return Err(format!("uniform length bounds inverted: lo {lo} > hi {hi}"));
                }
            }
            LengthDist::LogNormal { median, sigma, lo, hi } => {
                if lo > hi {
                    return Err(format!(
                        "lognormal clip bounds inverted: lo {lo} > hi {hi}"
                    ));
                }
                if !(median.is_finite() && median > 0.0) {
                    return Err(format!("lognormal median must be finite and > 0, got {median}"));
                }
                if !(sigma.is_finite() && sigma >= 0.0) {
                    return Err(format!("lognormal sigma must be finite and >= 0, got {sigma}"));
                }
            }
        }
        Ok(())
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            LengthDist::Constant(n) => n,
            LengthDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            LengthDist::LogNormal {
                median,
                sigma,
                lo,
                hi,
            } => {
                // Box–Muller: two uniforms -> one standard normal.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let x = (median.ln() + sigma * z).exp();
                (x.round() as usize).clamp(lo, hi)
            }
        }
    }
}

/// XOR'd into the workload seed to derive the independent arrival-RNG
/// seed, so length and arrival streams never share draws. Public so
/// callers sampling arrivals *outside* the generator (e.g. the
/// serving sweep scaling one pattern across load points) can decouple
/// their arrival stream from the same workload seed identically.
pub const ARRIVAL_SEED_SALT: u64 = 0xA221_7A15_712E_A300;

/// A seeded workload generator: one distribution per marginal, plus
/// an optional arrival process for online-serving workloads.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    /// Name used in reports (e.g. `"sharegpt"`).
    pub name: String,
    /// Input (prompt) length distribution.
    pub input: LengthDist,
    /// Output (generation) length distribution.
    pub output: LengthDist,
    rng: StdRng,
    /// Arrival sampler (`None` = offline: every request at t = 0).
    /// Draws from its own RNG, so attaching arrivals leaves the
    /// length stream byte-identical to the offline generator.
    arrivals: Option<ArrivalSampler>,
    seed: u64,
    next_id: u64,
}

impl WorkloadGen {
    /// Generator with explicit marginals. Panics on invalid length
    /// bounds — use [`WorkloadGen::try_new`] for a recoverable error.
    pub fn new(name: impl Into<String>, input: LengthDist, output: LengthDist, seed: u64) -> Self {
        Self::try_new(name, input, output, seed)
            .unwrap_or_else(|e| panic!("invalid workload distribution: {e}"))
    }

    /// Generator with explicit marginals, validating both length
    /// distributions up front.
    pub fn try_new(
        name: impl Into<String>,
        input: LengthDist,
        output: LengthDist,
        seed: u64,
    ) -> Result<Self, String> {
        input.validate().map_err(|e| format!("input lengths: {e}"))?;
        output.validate().map_err(|e| format!("output lengths: {e}"))?;
        Ok(WorkloadGen {
            name: name.into(),
            input,
            output,
            rng: StdRng::seed_from_u64(seed),
            arrivals: None,
            seed,
            next_id: 0,
        })
    }

    /// Attach an arrival process (validated up front): subsequently
    /// generated requests carry nondecreasing `arrival_s` times drawn
    /// from `dist`, seeded independently from the length stream.
    pub fn with_arrivals(mut self, dist: ArrivalDist) -> Result<Self, String> {
        dist.validate()?;
        self.arrivals = Some(ArrivalSampler::new(dist, self.seed ^ ARRIVAL_SEED_SALT));
        Ok(self)
    }

    /// ShareGPT-like chat workload: inputs and outputs of comparable,
    /// few-hundred-token length with a long tail (Figure 9b). The
    /// paper samples 2000 requests from this dataset.
    pub fn sharegpt(seed: u64) -> Self {
        Self::new(
            "sharegpt",
            LengthDist::LogNormal {
                median: 250.0,
                sigma: 0.9,
                lo: 4,
                hi: 4096,
            },
            LengthDist::LogNormal {
                median: 250.0,
                sigma: 0.75,
                lo: 4,
                hi: 2048,
            },
            seed,
        )
    }

    /// arxiv-summarization-like workload: multi-thousand-token inputs,
    /// short outputs (Figure 9a). The paper samples 500 requests.
    pub fn arxiv_summarization(seed: u64) -> Self {
        Self::new(
            "arxiv",
            LengthDist::LogNormal {
                median: 3000.0,
                sigma: 0.35,
                lo: 512,
                hi: 6000,
            },
            LengthDist::LogNormal {
                median: 180.0,
                sigma: 0.5,
                lo: 16,
                hi: 1024,
            },
            seed,
        )
    }

    /// Constant-length workload (§6.5: fixed 3000-token inputs with a
    /// swept output length).
    pub fn constant(input_len: usize, output_len: usize) -> Self {
        Self::new(
            format!("const-{input_len}x{output_len}"),
            LengthDist::Constant(input_len),
            LengthDist::Constant(output_len),
            0,
        )
    }

    /// Generate the next `n` requests.
    pub fn generate(&mut self, n: usize) -> Vec<Request> {
        (0..n)
            .map(|_| {
                let id = self.next_id;
                self.next_id += 1;
                let req = Request::new(
                    id,
                    self.input.sample(&mut self.rng).max(1),
                    self.output.sample(&mut self.rng).max(1),
                );
                match &mut self.arrivals {
                    Some(s) => req.with_arrival(s.next_time()),
                    None => req,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::LengthStats;

    #[test]
    fn deterministic_for_same_seed() {
        let a = WorkloadGen::sharegpt(7).generate(100);
        let b = WorkloadGen::sharegpt(7).generate(100);
        assert_eq!(a, b);
        let c = WorkloadGen::sharegpt(8).generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn arxiv_inputs_dwarf_outputs() {
        // Figure 9a: summarization inputs are much longer than outputs.
        let reqs = WorkloadGen::arxiv_summarization(1).generate(500);
        let s = LengthStats::of(&reqs);
        assert!(
            s.mean_input > 8.0 * s.mean_output,
            "mean in {} vs out {}",
            s.mean_input,
            s.mean_output
        );
        assert!(s.mean_input > 2000.0 && s.mean_input < 4500.0);
    }

    #[test]
    fn sharegpt_lengths_comparable() {
        // Figure 9b: chat inputs and outputs have comparable scales.
        let reqs = WorkloadGen::sharegpt(1).generate(2000);
        let s = LengthStats::of(&reqs);
        let ratio = s.mean_input / s.mean_output;
        assert!(
            (0.5..=2.5).contains(&ratio),
            "in/out ratio {ratio} should be near 1"
        );
    }

    #[test]
    fn constant_workload_is_constant() {
        let reqs = WorkloadGen::constant(3000, 300).generate(50);
        assert!(reqs.iter().all(|r| r.input_len == 3000 && r.output_len == 300));
    }

    #[test]
    fn clipping_respected() {
        let mut g = WorkloadGen::new(
            "clip",
            LengthDist::LogNormal {
                median: 100.0,
                sigma: 3.0,
                lo: 50,
                hi: 200,
            },
            LengthDist::Uniform { lo: 1, hi: 10 },
            3,
        );
        for r in g.generate(1000) {
            assert!((50..=200).contains(&r.input_len));
            assert!((1..=10).contains(&r.output_len));
        }
    }

    #[test]
    fn inverted_uniform_bounds_fail_at_construction() {
        let err = WorkloadGen::try_new(
            "bad",
            LengthDist::Uniform { lo: 100, hi: 10 },
            LengthDist::Constant(7),
            0,
        )
        .unwrap_err();
        assert!(err.contains("lo 100 > hi 10"), "unexpected error: {err}");
    }

    #[test]
    fn inverted_lognormal_clip_fails_at_construction() {
        let err = WorkloadGen::try_new(
            "bad",
            LengthDist::Constant(7),
            LengthDist::LogNormal { median: 100.0, sigma: 1.0, lo: 500, hi: 4 },
            0,
        )
        .unwrap_err();
        assert!(err.contains("lo 500 > hi 4"), "unexpected error: {err}");
    }

    #[test]
    #[should_panic(expected = "invalid workload distribution")]
    fn new_panics_with_clear_message_on_bad_bounds() {
        WorkloadGen::new(
            "bad",
            LengthDist::Uniform { lo: 9, hi: 3 },
            LengthDist::Constant(7),
            0,
        );
    }

    #[test]
    fn invalid_arrival_rate_fails_at_construction() {
        use crate::arrival::ArrivalDist;
        let err = WorkloadGen::sharegpt(0)
            .with_arrivals(ArrivalDist::Poisson { rate: -2.0 })
            .err()
            .expect("negative rate must be rejected");
        assert!(err.contains("rate"), "unexpected error: {err}");
    }

    #[test]
    fn arrivals_do_not_perturb_the_length_stream() {
        use crate::arrival::ArrivalDist;
        let offline = WorkloadGen::sharegpt(11).generate(64);
        let online = WorkloadGen::sharegpt(11)
            .with_arrivals(ArrivalDist::Poisson { rate: 4.0 })
            .unwrap()
            .generate(64);
        assert_eq!(offline.len(), online.len());
        for (a, b) in offline.iter().zip(&online) {
            assert_eq!((a.id, a.input_len, a.output_len), (b.id, b.input_len, b.output_len));
            assert_eq!(a.arrival_s, 0.0);
        }
        assert!(online.iter().any(|r| r.arrival_s > 0.0));
        assert!(online.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
    }

    #[test]
    fn zero_interval_arrivals_match_offline_byte_for_byte() {
        use crate::arrival::ArrivalDist;
        let offline = WorkloadGen::sharegpt(11).generate(64);
        let zeros = WorkloadGen::sharegpt(11)
            .with_arrivals(ArrivalDist::Constant { interval: 0.0 })
            .unwrap()
            .generate(64);
        assert_eq!(offline, zeros, "all-zero arrivals must equal the legacy path");
    }

    #[test]
    fn arrival_stream_is_seed_deterministic() {
        use crate::arrival::ArrivalDist;
        let dist = ArrivalDist::Gamma { rate: 2.0, cv: 2.0 };
        let gen = |seed| {
            WorkloadGen::sharegpt(seed)
                .with_arrivals(dist.clone())
                .unwrap()
                .generate(64)
        };
        assert_eq!(gen(5), gen(5));
        let a: Vec<f64> = gen(5).iter().map(|r| r.arrival_s).collect();
        let b: Vec<f64> = gen(6).iter().map(|r| r.arrival_s).collect();
        assert_ne!(a, b, "different seeds must produce different arrival streams");
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut g = WorkloadGen::sharegpt(0);
        let a = g.generate(10);
        let b = g.generate(10);
        assert_eq!(a.last().unwrap().id, 9);
        assert_eq!(b.first().unwrap().id, 10);
    }
}
