//! Request arrival processes for online serving workloads.
//!
//! Offline workloads (the paper's setting) make every request
//! available at t = 0; online serving sweeps instead draw arrival
//! times from a seeded process and measure latency/SLO attainment
//! under the resulting queueing. All samplers are deterministic for a
//! given seed, so serving sweeps are reproducible and parallel sweep
//! output is byte-identical to serial.

use crate::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An inter-arrival process over simulated seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalDist {
    /// Poisson process: exponential inter-arrival gaps with mean
    /// `1 / rate` (rate in requests/second).
    Poisson {
        /// Offered load, requests/second (finite, > 0).
        rate: f64,
    },
    /// Gamma-renewal process with the given mean rate and coefficient
    /// of variation of the inter-arrival gap. `cv < 1` is smoother
    /// than Poisson, `cv > 1` is burstier, `cv == 1` coincides with
    /// Poisson in distribution.
    Gamma {
        /// Offered load, requests/second (finite, > 0).
        rate: f64,
        /// Coefficient of variation of the gap (finite, > 0).
        cv: f64,
    },
    /// Fixed gap between consecutive arrivals (a paced load
    /// generator). `interval == 0.0` degenerates to the offline
    /// everything-at-t=0 workload.
    Constant {
        /// Gap between arrivals, seconds (finite, ≥ 0).
        interval: f64,
    },
    /// Replayed absolute arrival times, seconds, nondecreasing. When
    /// the trace is shorter than the request count, the remaining
    /// requests all arrive at the last traced time.
    Trace(Vec<f64>),
}

impl ArrivalDist {
    /// Validate the process parameters. Called by every consumer
    /// ([`crate::WorkloadGen::with_arrivals`], [`ArrivalDist::sample_times`])
    /// before any sampling, so malformed rates fail with a clear
    /// message instead of panicking mid-generation.
    pub fn validate(&self) -> Result<(), String> {
        let positive = |name: &str, v: f64| -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("arrival {name} must be finite and > 0, got {v}"))
            }
        };
        match self {
            ArrivalDist::Poisson { rate } => positive("rate", *rate),
            ArrivalDist::Gamma { rate, cv } => {
                positive("rate", *rate)?;
                positive("cv", *cv)
            }
            ArrivalDist::Constant { interval } => {
                if interval.is_finite() && *interval >= 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "arrival interval must be finite and >= 0, got {interval}"
                    ))
                }
            }
            ArrivalDist::Trace(times) => {
                let mut prev = 0.0f64;
                for (i, &t) in times.iter().enumerate() {
                    if !(t.is_finite() && t >= 0.0) {
                        return Err(format!(
                            "trace arrival [{i}] must be finite and >= 0, got {t}"
                        ));
                    }
                    if t < prev {
                        return Err(format!(
                            "trace arrivals must be nondecreasing, [{i}] = {t} after {prev}"
                        ));
                    }
                    prev = t;
                }
                Ok(())
            }
        }
    }

    /// Sample `n` absolute arrival times (nondecreasing, seconds)
    /// starting from t = 0, deterministically for a given seed.
    pub fn sample_times(&self, n: usize, seed: u64) -> Result<Vec<f64>, String> {
        self.validate()?;
        let mut sampler = ArrivalSampler::new(self.clone(), seed);
        Ok((0..n).map(|_| sampler.next_time()).collect())
    }

    /// Attach arrival times from this process to an offline request
    /// set (requests are assigned in slice order).
    pub fn attach(&self, reqs: &[Request], seed: u64) -> Result<Vec<Request>, String> {
        let times = self.sample_times(reqs.len(), seed)?;
        Ok(reqs
            .iter()
            .zip(times)
            .map(|(r, t)| r.with_arrival(t))
            .collect())
    }
}

/// Incremental sampler state for an [`ArrivalDist`] — used by
/// [`crate::WorkloadGen`] so arrivals thread through incremental
/// `generate` calls, and by [`ArrivalDist::sample_times`].
///
/// The sampler owns its own RNG, independent of the length RNG, so
/// attaching an arrival process never perturbs the generated lengths
/// (offline and online workloads with the same seed have identical
/// length streams).
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    dist: ArrivalDist,
    rng: StdRng,
    clock_s: f64,
    trace_pos: usize,
}

impl ArrivalSampler {
    /// Sampler over `dist`, seeded. The caller is expected to have
    /// validated `dist`.
    pub fn new(dist: ArrivalDist, seed: u64) -> Self {
        ArrivalSampler {
            dist,
            rng: StdRng::seed_from_u64(seed),
            clock_s: 0.0,
            trace_pos: 0,
        }
    }

    /// The next absolute arrival time, seconds.
    pub fn next_time(&mut self) -> f64 {
        match &self.dist {
            ArrivalDist::Poisson { rate } => {
                self.clock_s += exp_gap(&mut self.rng, *rate);
            }
            ArrivalDist::Gamma { rate, cv } => {
                // Gap ~ Gamma(shape = 1/cv², scale = cv²/rate):
                // mean 1/rate, coefficient of variation cv.
                let shape = 1.0 / (cv * cv);
                let scale = (cv * cv) / rate;
                self.clock_s += gamma_sample(&mut self.rng, shape) * scale;
            }
            ArrivalDist::Constant { interval } => {
                let t = self.clock_s;
                self.clock_s += interval;
                return t;
            }
            ArrivalDist::Trace(times) => {
                let t = match times.get(self.trace_pos) {
                    Some(&t) => t,
                    None => times.last().copied().unwrap_or(0.0),
                };
                self.trace_pos += 1;
                return t;
            }
        }
        self.clock_s
    }
}

/// One exponential inter-arrival gap with mean `1 / rate`.
fn exp_gap(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// One standard normal via Box–Muller (the same construction the
/// lognormal length sampler uses).
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One Gamma(shape, 1) sample (Marsaglia–Tsang squeeze; the shape < 1
/// case boosts through Gamma(shape + 1) · U^(1/shape)).
fn gamma_sample(rng: &mut StdRng, shape: f64) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_times_are_nondecreasing_and_seeded() {
        let dist = ArrivalDist::Poisson { rate: 2.0 };
        let a = dist.sample_times(200, 7).unwrap();
        let b = dist.sample_times(200, 7).unwrap();
        assert_eq!(a, b, "same seed must replay the same stream");
        let c = dist.sample_times(200, 8).unwrap();
        assert_ne!(a, c, "different seeds must differ");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean gap ~ 1/rate over 200 samples.
        let mean_gap = a.last().unwrap() / 200.0;
        assert!((0.3..0.8).contains(&mean_gap), "mean gap {mean_gap}");
    }

    #[test]
    fn gamma_matches_requested_rate_and_burstiness_orders() {
        let n = 2000;
        let smooth = ArrivalDist::Gamma { rate: 4.0, cv: 0.25 }
            .sample_times(n, 3)
            .unwrap();
        let bursty = ArrivalDist::Gamma { rate: 4.0, cv: 3.0 }
            .sample_times(n, 3)
            .unwrap();
        for times in [&smooth, &bursty] {
            let mean_gap = times.last().unwrap() / n as f64;
            assert!(
                (0.15..0.35).contains(&mean_gap),
                "mean gap {mean_gap} should be near 1/rate = 0.25"
            );
        }
        let cv_of = |times: &[f64]| {
            let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / m
        };
        assert!(
            cv_of(&smooth) < 0.5 && cv_of(&bursty) > 1.5,
            "gap cv must track the requested burstiness ({} vs {})",
            cv_of(&smooth),
            cv_of(&bursty)
        );
    }

    #[test]
    fn constant_paces_and_zero_interval_is_offline() {
        let times = ArrivalDist::Constant { interval: 0.5 }.sample_times(4, 0).unwrap();
        assert_eq!(times, vec![0.0, 0.5, 1.0, 1.5]);
        let zeros = ArrivalDist::Constant { interval: 0.0 }.sample_times(4, 0).unwrap();
        assert_eq!(zeros, vec![0.0; 4]);
    }

    #[test]
    fn trace_replays_and_clamps_past_the_end() {
        let dist = ArrivalDist::Trace(vec![0.0, 0.1, 0.4]);
        let times = dist.sample_times(5, 0).unwrap();
        assert_eq!(times, vec![0.0, 0.1, 0.4, 0.4, 0.4]);
    }

    #[test]
    fn invalid_parameters_error_instead_of_panicking() {
        assert!(ArrivalDist::Poisson { rate: 0.0 }.validate().is_err());
        assert!(ArrivalDist::Poisson { rate: f64::NAN }.validate().is_err());
        assert!(ArrivalDist::Poisson { rate: f64::INFINITY }.validate().is_err());
        assert!(ArrivalDist::Gamma { rate: 1.0, cv: -1.0 }.validate().is_err());
        assert!(ArrivalDist::Constant { interval: -0.1 }.validate().is_err());
        assert!(ArrivalDist::Trace(vec![1.0, 0.5]).validate().is_err());
        assert!(ArrivalDist::Trace(vec![0.0, f64::NAN]).validate().is_err());
        assert!(ArrivalDist::Poisson { rate: 3.0 }.validate().is_ok());
    }

    #[test]
    fn attach_preserves_lengths_and_order() {
        let reqs: Vec<Request> = (0..10).map(|i| Request::new(i, 100, 10)).collect();
        let online = ArrivalDist::Poisson { rate: 1.0 }.attach(&reqs, 1).unwrap();
        assert_eq!(online.len(), 10);
        for (a, b) in reqs.iter().zip(&online) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.input_len, b.input_len);
        }
        assert!(online.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
    }
}
