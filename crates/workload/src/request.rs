//! Inference requests.

use serde::{Deserialize, Serialize};

/// One offline inference request: a prompt of `input_len` tokens that
/// will generate `output_len` tokens. (Offline / throughput-oriented
/// workloads have no arrival process: everything is available at
/// t = 0, matching the paper's setting.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id within a run.
    pub id: u64,
    /// Prompt length in tokens.
    pub input_len: usize,
    /// Number of tokens to generate.
    pub output_len: usize,
}

impl Request {
    /// Construct a request.
    pub fn new(id: u64, input_len: usize, output_len: usize) -> Self {
        assert!(input_len > 0, "requests need at least one prompt token");
        assert!(output_len > 0, "requests generate at least one token");
        Request {
            id,
            input_len,
            output_len,
        }
    }

    /// Final sequence length once generation completes.
    pub fn total_len(&self) -> usize {
        self.input_len + self.output_len
    }

    /// Output-to-input ratio (`D:P` in §6.5).
    pub fn dp_ratio(&self) -> f64 {
        self.output_len as f64 / self.input_len as f64
    }
}

/// Aggregate length statistics of a request set (Figure 9 style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthStats {
    /// Number of requests.
    pub count: usize,
    /// Mean input length.
    pub mean_input: f64,
    /// Mean output length.
    pub mean_output: f64,
    /// Maximum total length.
    pub max_total: usize,
    /// Total prompt tokens.
    pub total_input: u64,
    /// Total generated tokens.
    pub total_output: u64,
}

impl LengthStats {
    /// Compute stats over a slice of requests.
    pub fn of(reqs: &[Request]) -> Self {
        let count = reqs.len();
        let total_input: u64 = reqs.iter().map(|r| r.input_len as u64).sum();
        let total_output: u64 = reqs.iter().map(|r| r.output_len as u64).sum();
        LengthStats {
            count,
            mean_input: total_input as f64 / count.max(1) as f64,
            mean_output: total_output as f64 / count.max(1) as f64,
            max_total: reqs.iter().map(|r| r.total_len()).max().unwrap_or(0),
            total_input,
            total_output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratio() {
        let r = Request::new(0, 3000, 300);
        assert_eq!(r.total_len(), 3300);
        assert!((r.dp_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one prompt token")]
    fn zero_input_rejected() {
        Request::new(0, 0, 10);
    }

    #[test]
    fn stats_aggregate() {
        let reqs = vec![Request::new(0, 100, 50), Request::new(1, 300, 150)];
        let s = LengthStats::of(&reqs);
        assert_eq!(s.count, 2);
        assert!((s.mean_input - 200.0).abs() < 1e-12);
        assert!((s.mean_output - 100.0).abs() < 1e-12);
        assert_eq!(s.max_total, 450);
        assert_eq!(s.total_input, 400);
    }
}
