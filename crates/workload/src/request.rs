//! Inference requests.

use serde::{Deserialize, Serialize};

/// One inference request: a prompt of `input_len` tokens that will
/// generate `output_len` tokens, available to the engine from
/// `arrival_s` seconds of simulated time.
///
/// Offline / throughput-oriented workloads (the paper's setting) have
/// no arrival process: every request carries `arrival_s == 0.0` and is
/// available at t = 0. Online serving workloads attach an arrival
/// stream (see [`crate::ArrivalDist`]); engines then only admit a
/// request once the simulated clock has reached its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id within a run.
    pub id: u64,
    /// Prompt length in tokens.
    pub input_len: usize,
    /// Number of tokens to generate.
    pub output_len: usize,
    /// Simulated time at which the request becomes available, seconds
    /// (0.0 = offline).
    pub arrival_s: f64,
}

impl Request {
    /// Construct an offline request (available at t = 0).
    pub fn new(id: u64, input_len: usize, output_len: usize) -> Self {
        assert!(input_len > 0, "requests need at least one prompt token");
        assert!(output_len > 0, "requests generate at least one token");
        Request {
            id,
            input_len,
            output_len,
            arrival_s: 0.0,
        }
    }

    /// The same request arriving at `arrival_s` seconds.
    pub fn with_arrival(mut self, arrival_s: f64) -> Self {
        assert!(
            arrival_s.is_finite() && arrival_s >= 0.0,
            "arrival time must be finite and non-negative, got {arrival_s}"
        );
        self.arrival_s = arrival_s;
        self
    }

    /// Final sequence length once generation completes.
    pub fn total_len(&self) -> usize {
        self.input_len + self.output_len
    }

    /// Output-to-input ratio (`D:P` in §6.5).
    pub fn dp_ratio(&self) -> f64 {
        self.output_len as f64 / self.input_len as f64
    }
}

/// Read-only request-metadata store keyed by id, replacing the
/// `HashMap<u64, Request>` lookups on the engines' hot paths.
///
/// Workload ids are dense and (near-)sequential — generators hand out
/// `0..n`, and autotune probes use a contiguous run below `u64::MAX`
/// — so when the id span is close to the request count the map is a
/// direct-indexed vector (O(1), no hashing); otherwise it falls back
/// to a sorted vector with binary search.
#[derive(Debug, Clone)]
pub enum RequestMap {
    /// Direct index: slot `id - base`.
    Dense {
        /// Smallest id in the set.
        base: u64,
        /// Slot per id in `[base, base + slots.len())`.
        slots: Vec<Option<Request>>,
    },
    /// Requests sorted by id, binary-searched.
    Sorted(Vec<Request>),
}

impl RequestMap {
    /// Span-to-count ratio up to which the dense representation is
    /// used (4× leaves room for modest id gaps without bloating).
    const DENSE_SLACK: u64 = 4;

    /// Build from a request set (ids must be unique).
    pub fn new(reqs: &[Request]) -> Self {
        if reqs.is_empty() {
            return RequestMap::Sorted(Vec::new());
        }
        let base = reqs.iter().map(|r| r.id).min().expect("non-empty");
        let max = reqs.iter().map(|r| r.id).max().expect("non-empty");
        // A set spanning (almost) the whole u64 range overflows the
        // span computation; such sets are sparse by definition.
        let span = (max - base).saturating_add(1);
        if span <= (reqs.len() as u64).saturating_mul(Self::DENSE_SLACK) {
            let mut slots = vec![None; span as usize];
            for r in reqs {
                let slot = &mut slots[(r.id - base) as usize];
                assert!(slot.is_none(), "duplicate request id {}", r.id);
                *slot = Some(*r);
            }
            RequestMap::Dense { base, slots }
        } else {
            let mut sorted = reqs.to_vec();
            sorted.sort_by_key(|r| r.id);
            for w in sorted.windows(2) {
                assert!(w[0].id != w[1].id, "duplicate request id {}", w[0].id);
            }
            RequestMap::Sorted(sorted)
        }
    }

    /// Look up a request by id.
    pub fn get(&self, id: u64) -> Option<&Request> {
        match self {
            RequestMap::Dense { base, slots } => id
                .checked_sub(*base)
                .and_then(|i| slots.get(i as usize))
                .and_then(|s| s.as_ref()),
            RequestMap::Sorted(sorted) => sorted
                .binary_search_by_key(&id, |r| r.id)
                .ok()
                .map(|i| &sorted[i]),
        }
    }

    /// Look up a request that must exist (engine invariant).
    pub fn req(&self, id: u64) -> Request {
        *self
            .get(id)
            .unwrap_or_else(|| panic!("unknown request id {id}"))
    }

    /// Number of stored requests.
    pub fn len(&self) -> usize {
        match self {
            RequestMap::Dense { slots, .. } => slots.iter().flatten().count(),
            RequestMap::Sorted(sorted) => sorted.len(),
        }
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<&[Request]> for RequestMap {
    fn from(reqs: &[Request]) -> Self {
        Self::new(reqs)
    }
}

/// Aggregate length statistics of a request set (Figure 9 style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthStats {
    /// Number of requests.
    pub count: usize,
    /// Mean input length.
    pub mean_input: f64,
    /// Mean output length.
    pub mean_output: f64,
    /// Maximum total length.
    pub max_total: usize,
    /// Total prompt tokens.
    pub total_input: u64,
    /// Total generated tokens.
    pub total_output: u64,
}

impl LengthStats {
    /// Compute stats over a slice of requests.
    pub fn of(reqs: &[Request]) -> Self {
        let count = reqs.len();
        let total_input: u64 = reqs.iter().map(|r| r.input_len as u64).sum();
        let total_output: u64 = reqs.iter().map(|r| r.output_len as u64).sum();
        LengthStats {
            count,
            mean_input: total_input as f64 / count.max(1) as f64,
            mean_output: total_output as f64 / count.max(1) as f64,
            max_total: reqs.iter().map(|r| r.total_len()).max().unwrap_or(0),
            total_input,
            total_output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratio() {
        let r = Request::new(0, 3000, 300);
        assert_eq!(r.total_len(), 3300);
        assert!((r.dp_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one prompt token")]
    fn zero_input_rejected() {
        Request::new(0, 0, 10);
    }

    #[test]
    fn arrival_defaults_to_offline_and_can_be_set() {
        let r = Request::new(0, 100, 10);
        assert_eq!(r.arrival_s, 0.0);
        let r = r.with_arrival(2.5);
        assert_eq!(r.arrival_s, 2.5);
        assert_eq!(r.input_len, 100);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_arrival_rejected() {
        Request::new(0, 100, 10).with_arrival(-1.0);
    }

    #[test]
    fn request_map_dense_for_sequential_ids() {
        let reqs: Vec<Request> = (0..50).map(|i| Request::new(i, 100 + i as usize, 10)).collect();
        let map = RequestMap::new(&reqs);
        assert!(matches!(map, RequestMap::Dense { .. }));
        assert_eq!(map.len(), 50);
        for r in &reqs {
            assert_eq!(map.req(r.id), *r);
        }
        assert!(map.get(50).is_none());
    }

    #[test]
    fn request_map_dense_for_probe_style_ids_near_max() {
        // Autotune probes use u64::MAX - i.
        let reqs: Vec<Request> =
            (0..24u64).map(|i| Request::new(u64::MAX - i, 2000, 250)).collect();
        let map = RequestMap::new(&reqs);
        assert!(matches!(map, RequestMap::Dense { .. }));
        for r in &reqs {
            assert_eq!(map.req(r.id), *r);
        }
        assert!(map.get(0).is_none());
    }

    #[test]
    fn request_map_sparse_ids_fall_back_to_sorted() {
        let reqs = vec![
            Request::new(3, 10, 1),
            Request::new(1_000_000, 20, 2),
            Request::new(77, 30, 3),
        ];
        let map = RequestMap::new(&reqs);
        assert!(matches!(map, RequestMap::Sorted(_)));
        assert_eq!(map.len(), 3);
        assert_eq!(map.req(77).input_len, 30);
        assert!(map.get(78).is_none());
    }

    #[test]
    fn request_map_survives_full_span_ids() {
        // base 0 and u64::MAX in one set: the span computation must
        // not overflow; the set is sparse, so Sorted is used.
        let reqs = vec![Request::new(0, 10, 1), Request::new(u64::MAX, 20, 2)];
        let map = RequestMap::new(&reqs);
        assert!(matches!(map, RequestMap::Sorted(_)));
        assert_eq!(map.req(0).input_len, 10);
        assert_eq!(map.req(u64::MAX).input_len, 20);
        assert!(map.get(1).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate request id")]
    fn request_map_rejects_duplicate_ids() {
        let reqs = vec![Request::new(5, 10, 1), Request::new(5, 20, 2)];
        RequestMap::new(&reqs);
    }

    #[test]
    fn stats_aggregate() {
        let reqs = vec![Request::new(0, 100, 50), Request::new(1, 300, 150)];
        let s = LengthStats::of(&reqs);
        assert_eq!(s.count, 2);
        assert!((s.mean_input - 200.0).abs() < 1e-12);
        assert!((s.mean_output - 100.0).abs() < 1e-12);
        assert_eq!(s.max_total, 450);
        assert_eq!(s.total_input, 400);
    }
}
