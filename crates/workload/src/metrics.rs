//! Run statistics shared by every engine.

use crate::request::Request;
use serde::{Deserialize, Serialize};

/// Outcome of processing a request set in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Requests completed.
    pub requests: usize,
    /// Prompt tokens processed.
    pub input_tokens: u64,
    /// Tokens generated.
    pub output_tokens: u64,
    /// Simulated wall-clock duration, seconds.
    pub duration_s: f64,
}

impl RunStats {
    /// Build from the completed request set and elapsed time.
    pub fn from_requests(reqs: &[Request], duration_s: f64) -> Self {
        assert!(duration_s >= 0.0);
        RunStats {
            requests: reqs.len(),
            input_tokens: reqs.iter().map(|r| r.input_len as u64).sum(),
            output_tokens: reqs.iter().map(|r| r.output_len as u64).sum(),
            duration_s,
        }
    }

    /// End-to-end throughput in requests/second — the paper's primary
    /// metric (§6.1: "we measure the end-to-end throughput").
    pub fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.duration_s
    }

    /// Generated-token throughput, tokens/second.
    pub fn output_tokens_per_sec(&self) -> f64 {
        self.output_tokens as f64 / self.duration_s
    }

    /// Total-token throughput (input + output), tokens/second.
    pub fn total_tokens_per_sec(&self) -> f64 {
        (self.input_tokens + self.output_tokens) as f64 / self.duration_s
    }
}

/// Geometric mean of a slice of positive ratios — the paper reports
/// geo-mean speedups (§6.2).
pub fn geo_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geo_mean of empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "geo_mean needs positives");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let reqs: Vec<Request> = (0..10).map(|i| Request::new(i, 100, 50)).collect();
        let s = RunStats::from_requests(&reqs, 5.0);
        assert!((s.throughput_rps() - 2.0).abs() < 1e-12);
        assert!((s.output_tokens_per_sec() - 100.0).abs() < 1e-12);
        assert!((s.total_tokens_per_sec() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_matches_hand_calc() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[1.45, 1.29]) - (1.45f64 * 1.29).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positives")]
    fn geo_mean_rejects_nonpositive() {
        geo_mean(&[1.0, 0.0]);
    }
}
