//! Run statistics shared by every engine.

use crate::request::Request;
use serde::{Deserialize, Serialize};

/// Outcome of processing a request set in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Requests completed.
    pub requests: usize,
    /// Prompt tokens processed.
    pub input_tokens: u64,
    /// Tokens generated.
    pub output_tokens: u64,
    /// Simulated wall-clock duration, seconds.
    pub duration_s: f64,
}

impl RunStats {
    /// Build from the completed request set and elapsed time. A
    /// non-empty request set must have taken strictly positive time —
    /// otherwise every throughput accessor would return `inf`/`NaN`;
    /// an empty set may have `duration_s == 0.0` (its throughputs are
    /// all 0.0).
    pub fn from_requests(reqs: &[Request], duration_s: f64) -> Self {
        assert!(
            duration_s.is_finite() && duration_s >= 0.0,
            "run duration must be finite and non-negative, got {duration_s}"
        );
        assert!(
            reqs.is_empty() || duration_s > 0.0,
            "a non-empty run ({} requests) needs strictly positive duration",
            reqs.len()
        );
        RunStats {
            requests: reqs.len(),
            input_tokens: reqs.iter().map(|r| r.input_len as u64).sum(),
            output_tokens: reqs.iter().map(|r| r.output_len as u64).sum(),
            duration_s,
        }
    }

    /// `count / duration`, defined as 0.0 for the zero-duration
    /// (empty) run so empty sweeps report zeros instead of `NaN`.
    fn per_sec(&self, count: f64) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            count / self.duration_s
        }
    }

    /// End-to-end throughput in requests/second — the paper's primary
    /// metric (§6.1: "we measure the end-to-end throughput").
    pub fn throughput_rps(&self) -> f64 {
        self.per_sec(self.requests as f64)
    }

    /// Generated-token throughput, tokens/second.
    pub fn output_tokens_per_sec(&self) -> f64 {
        self.per_sec(self.output_tokens as f64)
    }

    /// Total-token throughput (input + output), tokens/second.
    pub fn total_tokens_per_sec(&self) -> f64 {
        self.per_sec((self.input_tokens + self.output_tokens) as f64)
    }
}

/// Geometric mean of a slice of positive ratios — the paper reports
/// geo-mean speedups (§6.2). Errs (instead of aborting a whole sweep)
/// on an empty slice or any non-positive/non-finite ratio, which a
/// zero-throughput candidate (e.g. a serving point admitting nothing)
/// would produce.
pub fn geo_mean(xs: &[f64]) -> Result<f64, String> {
    if xs.is_empty() {
        return Err("geo_mean of empty slice".into());
    }
    if let Some(bad) = xs.iter().find(|&&x| !(x.is_finite() && x > 0.0)) {
        return Err(format!("geo_mean needs positive finite ratios, got {bad}"));
    }
    Ok((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let reqs: Vec<Request> = (0..10).map(|i| Request::new(i, 100, 50)).collect();
        let s = RunStats::from_requests(&reqs, 5.0);
        assert!((s.throughput_rps() - 2.0).abs() < 1e-12);
        assert!((s.output_tokens_per_sec() - 100.0).abs() < 1e-12);
        assert!((s.total_tokens_per_sec() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_reports_zero_throughput() {
        // Regression: this used to be NaN (0/0) for every accessor.
        let s = RunStats::from_requests(&[], 0.0);
        assert_eq!(s.throughput_rps(), 0.0);
        assert_eq!(s.output_tokens_per_sec(), 0.0);
        assert_eq!(s.total_tokens_per_sec(), 0.0);
        // An empty run with elapsed time is also all-zero.
        let s = RunStats::from_requests(&[], 2.0);
        assert_eq!(s.throughput_rps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly positive duration")]
    fn nonempty_run_rejects_zero_duration() {
        // Regression: this used to construct fine and then return
        // `inf` from every throughput accessor.
        let reqs = vec![Request::new(0, 100, 50)];
        RunStats::from_requests(&reqs, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_duration_rejected() {
        RunStats::from_requests(&[], f64::NAN);
    }

    #[test]
    fn geo_mean_matches_hand_calc() {
        assert!((geo_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[1.45, 1.29]).unwrap() - (1.45f64 * 1.29).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_errs_on_zero_ratio_instead_of_aborting() {
        // Regression: a single zero-throughput candidate used to
        // panic and abort the whole sweep.
        let err = geo_mean(&[1.0, 0.0]).unwrap_err();
        assert!(err.contains("got 0"), "unexpected error: {err}");
        assert!(geo_mean(&[]).is_err());
        assert!(geo_mean(&[1.0, f64::NAN]).is_err());
        assert!(geo_mean(&[1.0, f64::INFINITY]).is_err());
    }
}
