//! Time-varying arrival-rate envelopes and day-scale trace
//! generation for elastic-fleet (autoscaling) experiments.
//!
//! An online-serving sweep holds the offered rate constant per point;
//! a capacity-planning question is the opposite: the rate follows a
//! production-shaped daily curve and the fleet must follow it. A
//! [`RateEnvelope`] describes that curve analytically — sinusoidal
//! (one daily peak), bimodal (morning + evening peaks), or constant —
//! and samples it into concrete arrival times via Poisson thinning
//! (a non-homogeneous Poisson process: candidates arrive at the peak
//! rate, each kept with probability `rate(t) / peak`). Sampling is
//! seeded and deterministic, like every other generator in this
//! crate.
//!
//! Real traces load through [`parse_trace`] / [`load_trace_file`]
//! (one absolute arrival time per line) and feed the same
//! [`crate::ArrivalDist::Trace`] consumers; [`unit_rate_pattern`]
//! normalizes either kind to unit mean rate so load sweeps can
//! time-scale one pattern per grid cell exactly as they do with the
//! unit-rate Poisson pattern.

use crate::arrival::ArrivalDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An arrival-rate curve over the day (periodic: `rate_at` wraps at
/// `period_s`, so traces longer than one period repeat the shape).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RateEnvelope {
    /// Flat rate — the degenerate envelope (a homogeneous Poisson
    /// process; useful as a sweep baseline).
    Constant {
        /// Offered load, requests/second (finite, > 0).
        rps: f64,
    },
    /// One daily cycle: trough at t = 0, peak at half period. The
    /// raised cosine is taken to the `sharpness` power, so `1.0` is
    /// the classic sinusoid (half the day above the midpoint) while
    /// higher values concentrate traffic into a narrower peak — real
    /// daily curves are peakier than a pure sinusoid, and the
    /// mean-to-peak ratio (what an elastic fleet saves against a
    /// peak-provisioned static one) drops from 1/2 at `1.0` to 3/8
    /// at `2.0` and 5/16 at `3.0`.
    Sinusoidal {
        /// Rate at the trough, requests/second (finite, ≥ 0).
        trough_rps: f64,
        /// Rate at the peak, requests/second (finite, ≥ trough).
        peak_rps: f64,
        /// Cycle length, seconds (finite, > 0); 86 400 = one day.
        period_s: f64,
        /// Peak concentration exponent (finite, ≥ 1).
        sharpness: f64,
    },
    /// Two Gaussian peaks over a base rate (morning + evening rush).
    /// The bumps combine by `max`, so `peak_rps` is attained exactly
    /// at each center.
    Bimodal {
        /// Off-peak floor, requests/second (finite, ≥ 0).
        base_rps: f64,
        /// Rate at each peak center, requests/second (finite, ≥ base).
        peak_rps: f64,
        /// Cycle length, seconds (finite, > 0).
        period_s: f64,
        /// First peak center as a fraction of the period, in [0, 1).
        peak1_frac: f64,
        /// Second peak center as a fraction of the period, in [0, 1).
        peak2_frac: f64,
        /// Gaussian σ of each bump as a fraction of the period
        /// (finite, > 0).
        width_frac: f64,
    },
}

impl RateEnvelope {
    /// A pure sinusoidal day swinging between `trough_rps` and
    /// `peak_rps` (sharpness 1).
    pub fn diurnal(trough_rps: f64, peak_rps: f64, day_s: f64) -> Self {
        Self::diurnal_sharp(trough_rps, peak_rps, day_s, 1.0)
    }

    /// A diurnal day with an explicit peak-concentration exponent
    /// (see [`RateEnvelope::Sinusoidal`]).
    pub fn diurnal_sharp(trough_rps: f64, peak_rps: f64, day_s: f64, sharpness: f64) -> Self {
        RateEnvelope::Sinusoidal { trough_rps, peak_rps, period_s: day_s, sharpness }
    }

    /// The default two-rush-hour shape: peaks at 35% and 75% of the
    /// day, each σ = 8% of the day wide.
    pub fn rush_hours(base_rps: f64, peak_rps: f64, day_s: f64) -> Self {
        RateEnvelope::Bimodal {
            base_rps,
            peak_rps,
            period_s: day_s,
            peak1_frac: 0.35,
            peak2_frac: 0.75,
            width_frac: 0.08,
        }
    }

    /// Validate the envelope's parameters (called by every sampler
    /// entry point, so malformed rates fail with a clear message).
    pub fn validate(&self) -> Result<(), String> {
        let finite_nonneg = |name: &str, v: f64| -> Result<(), String> {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(format!("envelope {name} must be finite and >= 0, got {v}"))
            }
        };
        let positive = |name: &str, v: f64| -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("envelope {name} must be finite and > 0, got {v}"))
            }
        };
        match *self {
            RateEnvelope::Constant { rps } => positive("rps", rps),
            RateEnvelope::Sinusoidal { trough_rps, peak_rps, period_s, sharpness } => {
                finite_nonneg("trough_rps", trough_rps)?;
                positive("peak_rps", peak_rps)?;
                positive("period_s", period_s)?;
                if peak_rps < trough_rps {
                    return Err(format!(
                        "envelope peak_rps {peak_rps} must be >= trough_rps {trough_rps}"
                    ));
                }
                if !(sharpness.is_finite() && sharpness >= 1.0) {
                    return Err(format!(
                        "envelope sharpness must be finite and >= 1, got {sharpness}"
                    ));
                }
                Ok(())
            }
            RateEnvelope::Bimodal {
                base_rps,
                peak_rps,
                period_s,
                peak1_frac,
                peak2_frac,
                width_frac,
            } => {
                finite_nonneg("base_rps", base_rps)?;
                positive("peak_rps", peak_rps)?;
                positive("period_s", period_s)?;
                positive("width_frac", width_frac)?;
                if peak_rps < base_rps {
                    return Err(format!(
                        "envelope peak_rps {peak_rps} must be >= base_rps {base_rps}"
                    ));
                }
                for (name, f) in [("peak1_frac", peak1_frac), ("peak2_frac", peak2_frac)] {
                    if !(f.is_finite() && (0.0..1.0).contains(&f)) {
                        return Err(format!(
                            "envelope {name} must be in [0, 1), got {f}"
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Instantaneous rate at time `t` seconds (periodic in the
    /// envelope's period).
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            RateEnvelope::Constant { rps } => rps,
            RateEnvelope::Sinusoidal { trough_rps, peak_rps, period_s, sharpness } => {
                let u = t.rem_euclid(period_s);
                let phase = 2.0 * std::f64::consts::PI * u / period_s;
                let raised = 0.5 * (1.0 - phase.cos());
                trough_rps + (peak_rps - trough_rps) * raised.powf(sharpness)
            }
            RateEnvelope::Bimodal {
                base_rps,
                peak_rps,
                period_s,
                peak1_frac,
                peak2_frac,
                width_frac,
            } => {
                let u = t.rem_euclid(period_s);
                let sigma = width_frac * period_s;
                let bump = |center_frac: f64| -> f64 {
                    let c = center_frac * period_s;
                    // Circular distance, so a peak near the period
                    // boundary wraps instead of being cut off.
                    let d = (u - c).abs().min(period_s - (u - c).abs());
                    (-0.5 * (d / sigma) * (d / sigma)).exp()
                };
                base_rps + (peak_rps - base_rps) * bump(peak1_frac).max(bump(peak2_frac))
            }
        }
    }

    /// The envelope's maximum rate (the thinning bound, and the rate
    /// a peak-provisioned static fleet is sized against).
    pub fn peak_rps(&self) -> f64 {
        match *self {
            RateEnvelope::Constant { rps } => rps,
            RateEnvelope::Sinusoidal { peak_rps, .. } => peak_rps,
            RateEnvelope::Bimodal { peak_rps, .. } => peak_rps,
        }
    }

    /// Mean rate over one period (analytic where closed-form, a
    /// deterministic 4096-step trapezoid otherwise).
    pub fn mean_rps(&self) -> f64 {
        match *self {
            RateEnvelope::Constant { rps } => rps,
            RateEnvelope::Sinusoidal { trough_rps, peak_rps, sharpness, .. }
                if sharpness == 1.0 =>
            {
                0.5 * (trough_rps + peak_rps)
            }
            RateEnvelope::Sinusoidal { period_s, .. }
            | RateEnvelope::Bimodal { period_s, .. } => {
                const STEPS: usize = 4096;
                let h = period_s / STEPS as f64;
                let mut acc = 0.0;
                for i in 0..STEPS {
                    let a = self.rate_at(i as f64 * h);
                    let b = self.rate_at((i + 1) as f64 * h);
                    acc += 0.5 * (a + b) * h;
                }
                acc / period_s
            }
        }
    }

    /// Sample every arrival in `[0, duration_s)` by Poisson thinning,
    /// deterministically for a given seed. The returned times are
    /// nondecreasing and feed [`crate::ArrivalDist::Trace`] directly.
    pub fn sample_trace(&self, duration_s: f64, seed: u64) -> Result<Vec<f64>, String> {
        self.validate()?;
        if !(duration_s.is_finite() && duration_s > 0.0) {
            return Err(format!(
                "trace duration must be finite and > 0, got {duration_s}"
            ));
        }
        let mut out = Vec::new();
        let mut thin = Thinner::new(*self, seed);
        while let Some(t) = thin.next_before(duration_s) {
            out.push(t);
        }
        Ok(out)
    }

    /// Sample exactly `n` arrivals (the periodic envelope continues
    /// past one period), deterministically for a given seed. Used
    /// where a fixed request count needs trace-shaped pacing, e.g.
    /// the `fleet` bin's `--trace diurnal` pattern.
    pub fn sample_n(&self, n: usize, seed: u64) -> Result<Vec<f64>, String> {
        self.validate()?;
        let mut out = Vec::with_capacity(n);
        let mut thin = Thinner::new(*self, seed);
        while out.len() < n {
            out.push(thin.next());
        }
        Ok(out)
    }
}

/// Incremental non-homogeneous Poisson sampler (thinning at the
/// envelope's peak rate).
struct Thinner {
    env: RateEnvelope,
    peak: f64,
    rng: StdRng,
    clock_s: f64,
}

impl Thinner {
    fn new(env: RateEnvelope, seed: u64) -> Self {
        Thinner {
            env,
            peak: env.peak_rps(),
            rng: StdRng::seed_from_u64(seed),
            clock_s: 0.0,
        }
    }

    /// The next accepted arrival time.
    fn next(&mut self) -> f64 {
        loop {
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            self.clock_s += -u.ln() / self.peak;
            let accept: f64 = self.rng.gen_range(0.0..1.0);
            if accept * self.peak <= self.env.rate_at(self.clock_s) {
                return self.clock_s;
            }
        }
    }

    /// The next accepted arrival before `horizon`, or `None` once the
    /// candidate clock passes it.
    fn next_before(&mut self, horizon: f64) -> Option<f64> {
        while self.clock_s < horizon {
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            self.clock_s += -u.ln() / self.peak;
            if self.clock_s >= horizon {
                return None;
            }
            let accept: f64 = self.rng.gen_range(0.0..1.0);
            if accept * self.peak <= self.env.rate_at(self.clock_s) {
                return Some(self.clock_s);
            }
        }
        None
    }
}

/// Parse a replayed arrival trace: one absolute arrival time (seconds)
/// per line; blank lines and `#` comments are skipped. The times must
/// be finite, non-negative, and nondecreasing. They are **re-based**
/// so the first arrival defines t = 0: traces exported with epoch or
/// mid-day timestamps would otherwise prepend hours (or decades) of
/// dead air — distorting normalized load in the fleet sweeps and
/// exploding the autoscale controller's window axis.
pub fn parse_trace(text: &str) -> Result<Vec<f64>, String> {
    let mut times = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let t: f64 = line.parse().map_err(|_| {
            format!("trace line {}: not a number: {line:?}", lineno + 1)
        })?;
        times.push(t);
    }
    if times.is_empty() {
        return Err("trace file has no arrival times".into());
    }
    ArrivalDist::Trace(times.clone()).validate()?;
    let start = times[0];
    if start > 0.0 {
        for t in &mut times {
            *t -= start;
        }
    }
    Ok(times)
}

/// Load an arrival trace from a file (see [`parse_trace`] for the
/// format).
pub fn load_trace_file(path: &str) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace {path}: {e}"))?;
    parse_trace(&text)
}

/// Normalize arrival `times` into a unit-mean-rate pattern of exactly
/// `n` points: truncated or clamp-extended to `n` (repeating the last
/// time, the [`crate::ArrivalDist::Trace`] convention), then
/// time-scaled so the mean rate over the pattern is 1 request/second.
/// Load sweeps divide by the offered rate per grid cell, exactly as
/// they do with a unit-rate Poisson pattern.
pub fn unit_rate_pattern(times: &[f64], n: usize) -> Result<Vec<f64>, String> {
    if n == 0 {
        return Err("unit-rate pattern needs at least one request".into());
    }
    if times.is_empty() {
        return Err("unit-rate pattern needs a non-empty trace".into());
    }
    ArrivalDist::Trace(times.to_vec()).validate()?;
    let last_used = times[times.len().min(n) - 1];
    if last_used <= 0.0 {
        return Err(format!(
            "trace must span positive time to carry a rate, last used time is {last_used}"
        ));
    }
    let scale = n as f64 / last_used;
    Ok((0..n)
        .map(|i| times.get(i).copied().unwrap_or(last_used) * scale)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinusoidal_peaks_mid_period_and_wraps() {
        let env = RateEnvelope::diurnal(1.0, 5.0, 100.0);
        assert!((env.rate_at(0.0) - 1.0).abs() < 1e-12);
        assert!((env.rate_at(50.0) - 5.0).abs() < 1e-12);
        assert!((env.rate_at(150.0) - 5.0).abs() < 1e-9, "periodic wrap");
        assert!((env.mean_rps() - 3.0).abs() < 1e-12);
        assert_eq!(env.peak_rps(), 5.0);
    }

    #[test]
    fn sharpness_concentrates_the_peak_without_moving_it() {
        let flat = RateEnvelope::diurnal(0.0, 4.0, 100.0);
        let sharp = RateEnvelope::diurnal_sharp(0.0, 4.0, 100.0, 3.0);
        // Peak value and location unchanged.
        assert!((sharp.rate_at(50.0) - 4.0).abs() < 1e-12);
        assert_eq!(sharp.peak_rps(), 4.0);
        // Off-peak shoulders drop below the pure sinusoid.
        assert!(sharp.rate_at(25.0) < flat.rate_at(25.0));
        // Mean-to-peak ratio: 1/2 for the sinusoid, 5/16 for p = 3.
        assert!((flat.mean_rps() / 4.0 - 0.5).abs() < 1e-9);
        assert!((sharp.mean_rps() / 4.0 - 5.0 / 16.0).abs() < 1e-3);
        assert!(RateEnvelope::diurnal_sharp(0.0, 1.0, 10.0, 0.5).validate().is_err());
    }

    #[test]
    fn bimodal_attains_peak_at_both_centers() {
        let env = RateEnvelope::rush_hours(0.5, 4.0, 1000.0);
        assert!((env.rate_at(350.0) - 4.0).abs() < 1e-9);
        assert!((env.rate_at(750.0) - 4.0).abs() < 1e-9);
        // Midnight sits far from both peaks.
        assert!(env.rate_at(0.0) < 1.0);
        let mean = env.mean_rps();
        assert!(mean > 0.5 && mean < 4.0, "mean {mean} between base and peak");
    }

    #[test]
    fn thinning_is_seeded_nondecreasing_and_tracks_the_mean() {
        let env = RateEnvelope::diurnal(1.0, 3.0, 500.0);
        let a = env.sample_trace(500.0, 9).unwrap();
        let b = env.sample_trace(500.0, 9).unwrap();
        assert_eq!(a, b, "same seed must replay the same trace");
        assert_ne!(a, env.sample_trace(500.0, 10).unwrap());
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| (0.0..500.0).contains(&t)));
        // Expected count = mean_rps * duration = 1000; thinning noise
        // stays well within ±20% at this size.
        let n = a.len() as f64;
        assert!((800.0..1200.0).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn thinning_concentrates_arrivals_at_the_peak() {
        let env = RateEnvelope::diurnal(0.2, 4.0, 1000.0);
        let times = env.sample_trace(1000.0, 3).unwrap();
        let trough_half = times.iter().filter(|&&t| t < 250.0 || t >= 750.0).count();
        let peak_half = times.len() - trough_half;
        assert!(
            peak_half > 2 * trough_half,
            "peak half must dominate: {peak_half} vs {trough_half}"
        );
    }

    #[test]
    fn sample_n_extends_past_one_period() {
        let env = RateEnvelope::diurnal(1.0, 2.0, 10.0);
        let times = env.sample_n(100, 4).unwrap();
        assert_eq!(times.len(), 100);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(*times.last().unwrap() > 10.0, "must continue into later periods");
    }

    #[test]
    fn invalid_envelopes_error() {
        assert!(RateEnvelope::Constant { rps: 0.0 }.validate().is_err());
        assert!(RateEnvelope::diurnal(2.0, 1.0, 100.0).validate().is_err());
        assert!(RateEnvelope::diurnal(1.0, 2.0, 0.0).validate().is_err());
        assert!(RateEnvelope::diurnal(1.0, f64::NAN, 100.0).validate().is_err());
        let bad_frac = RateEnvelope::Bimodal {
            base_rps: 0.1,
            peak_rps: 1.0,
            period_s: 100.0,
            peak1_frac: 1.5,
            peak2_frac: 0.5,
            width_frac: 0.1,
        };
        assert!(bad_frac.validate().is_err());
        assert!(RateEnvelope::diurnal(1.0, 2.0, 100.0).sample_trace(-5.0, 0).is_err());
        assert!(RateEnvelope::diurnal(1.0, 2.0, 100.0).validate().is_ok());
    }

    #[test]
    fn parse_trace_skips_comments_and_validates() {
        let text = "# a trace\n0.0\n1.5\n\n2.5\n";
        assert_eq!(parse_trace(text).unwrap(), vec![0.0, 1.5, 2.5]);
        assert!(parse_trace("1.0\n0.5\n").is_err(), "decreasing times");
        assert!(parse_trace("abc\n").is_err());
        assert!(parse_trace("# only comments\n").is_err());
    }

    #[test]
    fn parse_trace_rebases_late_starts_to_zero() {
        // A trace exported with mid-day (or epoch) timestamps must
        // not carry its offset as dead air.
        let times = parse_trace("3600.0\n3601.5\n3604.0\n").unwrap();
        assert_eq!(times, vec![0.0, 1.5, 4.0]);
        let epoch = parse_trace("1750000000.0\n1750000002.0\n").unwrap();
        assert_eq!(epoch, vec![0.0, 2.0]);
    }

    #[test]
    fn unit_rate_pattern_normalizes_truncates_and_extends() {
        // 4 points over 2 s = rate 2; normalized to rate 1 over 4 s.
        let unit = unit_rate_pattern(&[0.0, 1.0, 1.5, 2.0], 4).unwrap();
        assert_eq!(unit.len(), 4);
        assert!((unit.last().unwrap() - 4.0).abs() < 1e-12);
        // Truncation: only the first 2 points count.
        let trunc = unit_rate_pattern(&[0.0, 1.0, 1.5, 2.0], 2).unwrap();
        assert!((trunc.last().unwrap() - 2.0).abs() < 1e-12);
        // Extension repeats the last time before scaling.
        let ext = unit_rate_pattern(&[0.0, 1.0], 4).unwrap();
        assert_eq!(ext.len(), 4);
        assert!((ext[1] - ext[3]).abs() < 1e-12 || ext[1] < ext[3]);
        assert!((ext.last().unwrap() - 4.0).abs() < 1e-12);
        // Degenerate traces carry no rate.
        assert!(unit_rate_pattern(&[0.0, 0.0], 2).is_err());
        assert!(unit_rate_pattern(&[], 2).is_err());
        assert!(unit_rate_pattern(&[0.0, 1.0], 0).is_err());
    }
}
