//! Fault-schedule consumption: the types the controller's
//! fault-aware replay understands, plus availability accounting.
//!
//! This module deliberately contains **no randomness**. A
//! [`FaultSchedule`] is a fully resolved, serializable list of timed
//! events — independent replica kills and correlated group outages —
//! plus the recovery knobs (detection delay, [`RetryPolicy`], whether
//! failed capacity is replaced). The seeded *generation* of schedules
//! lives in the `chaos` crate; the controller here only consumes
//! them, so an empty schedule leaves the plain autoscale replay
//! bit-identical (one code path, no RNG on it).

use crate::controller::ReplicaLifecycle;
use serde::{Deserialize, Serialize};

/// How lost requests are retried after a replica failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Most dispatch attempts a request may consume (first try
    /// included, ≥ 1). A request whose attempt budget is exhausted is
    /// counted as failed — never silently dropped.
    pub max_attempts: u32,
    /// Backoff before the second retry, seconds (the first requeue
    /// after a failure waits only the detection delay; subsequent
    /// ones add exponential backoff: base, 2×base, 4×base, …).
    pub backoff_base_s: f64,
    /// Ceiling on the exponential backoff, seconds.
    pub backoff_cap_s: f64,
    /// Per-request retry deadline, seconds after its *first* arrival:
    /// a retry that would dispatch later than this fails instead.
    pub deadline_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            backoff_base_s: 1.0,
            backoff_cap_s: 8.0,
            deadline_s: 600.0,
        }
    }
}

impl RetryPolicy {
    /// Validate the policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1 (the first try)".into());
        }
        for (name, v) in [
            ("backoff_base_s", self.backoff_base_s),
            ("backoff_cap_s", self.backoff_cap_s),
            ("deadline_s", self.deadline_s),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(())
    }

    /// Backoff paid before dispatch attempt `attempt` (1-based; the
    /// original dispatch and the first retry pay none — detection
    /// already delayed the latter).
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        if attempt <= 2 {
            return 0.0;
        }
        // 2^(attempt - 3) × base, exponent clamped so the shift never
        // overflows; the cap dominates far earlier anyway.
        let exp = u32::min(attempt - 3, 52);
        (self.backoff_base_s * (1u64 << exp) as f64).min(self.backoff_cap_s)
    }
}

/// What fails at one scheduled fault instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Kill one live replica, chosen as `candidates[pick % len]` over
    /// the replicas live at the fault instant (in spawn order). The
    /// draw is resolved at schedule time so consumption is RNG-free;
    /// taking it modulo the live count keeps the victim well-defined
    /// whatever the fleet size has become. No-op if nothing is live.
    KillReplica {
        /// Pre-drawn uniform `u64` selecting the victim.
        pick: u64,
    },
    /// Kill every live replica whose spawn index is congruent to
    /// `group` modulo the schedule's group count — a rack/zone
    /// striping of the fleet, so correlated failures take out a fixed
    /// slice of capacity however large the fleet has grown.
    GroupOutage {
        /// The failing group, in `[0, groups)`.
        group: usize,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes, seconds.
    pub t_s: f64,
    /// What fails.
    pub kind: FaultKind,
}

/// A fully resolved fault schedule plus recovery knobs — everything
/// the controller needs to replay failures deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Timed faults, sorted by time.
    pub events: Vec<FaultEvent>,
    /// Rack/zone groups replica indices stripe across (≥ 1).
    pub groups: usize,
    /// Failure-detection delay, seconds: work lost at a kill at `t`
    /// re-enters the router's queue no earlier than `t + detect_s`.
    pub detect_s: f64,
    /// Retry behaviour for lost requests.
    pub retry: RetryPolicy,
    /// Whether the controller spawns replacement replicas (paying the
    /// usual warm-up) to restore the policy's desired count after
    /// failures. Off models a static deployment that never heals.
    pub replace_failures: bool,
}

impl FaultSchedule {
    /// The empty schedule: no faults, no replacement. Replaying under
    /// it is exactly the fault-free autoscale replay.
    pub fn none() -> Self {
        FaultSchedule {
            events: Vec::new(),
            groups: 1,
            detect_s: 0.0,
            retry: RetryPolicy::default(),
            replace_failures: false,
        }
    }

    /// Whether the schedule contains no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate the schedule (sorted finite nonnegative times, sane
    /// knobs).
    pub fn validate(&self) -> Result<(), String> {
        if self.groups == 0 {
            return Err("fault groups must be at least 1".into());
        }
        if !(self.detect_s.is_finite() && self.detect_s >= 0.0) {
            return Err(format!(
                "detection delay must be finite and >= 0, got {}",
                self.detect_s
            ));
        }
        self.retry.validate()?;
        for e in &self.events {
            if !(e.t_s.is_finite() && e.t_s >= 0.0) {
                return Err(format!("fault time must be finite and >= 0, got {}", e.t_s));
            }
            if let FaultKind::GroupOutage { group } = e.kind {
                if group >= self.groups {
                    return Err(format!(
                        "outage group {group} out of range for {} groups",
                        self.groups
                    ));
                }
            }
        }
        if self.events.windows(2).any(|w| w[0].t_s > w[1].t_s) {
            return Err("fault events must be sorted by time".into());
        }
        Ok(())
    }
}

/// One replica kill as it actually happened during the replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// When the replica died, seconds.
    pub t_s: f64,
    /// The killed replica (spawn-order index).
    pub replica: usize,
    /// The outage group, for correlated failures (`None` for
    /// independent kills).
    pub group: Option<usize>,
    /// Dispatch attempts lost on this replica (in flight or queued at
    /// the kill, by the controller's calibrated queue mirror).
    pub lost_attempts: usize,
}

/// Request-conservation and capacity accounting for a fault-injected
/// replay. The invariant the chaos tier is judged by:
/// `completed + failed == offered` and
/// `attempts == completed + lost_attempts` — nothing is ever
/// silently dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityStats {
    /// Requests in the original trace.
    pub offered: usize,
    /// Dispatch attempts, retries included (`offered` exactly when no
    /// fault ever struck).
    pub attempts: usize,
    /// Requests that eventually completed.
    pub completed: usize,
    /// Attempts lost to failures (killed mid-service/queue, or
    /// undispatchable because nothing was accepting).
    pub lost_attempts: usize,
    /// Retry attempts dispatched.
    pub retries: usize,
    /// Requests that exhausted their retry budget or deadline.
    pub failed: usize,
    /// Replica kills that actually struck a live replica.
    pub replicas_killed: usize,
    /// Seconds within the horizon during which *no* replica was
    /// accepting traffic.
    pub unavailability_s: f64,
    /// Accepting replica-seconds per control window — the per-window
    /// serving capacity the fleet actually had.
    pub window_capacity_s: Vec<f64>,
}

impl AvailabilityStats {
    /// Offered-load amplification from retries:
    /// `attempts / offered` (1.0 for an empty trace).
    pub fn retry_amplification(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.attempts as f64 / self.offered as f64
        }
    }
}

/// The interval `[start, end)` during which a replica accepted
/// traffic, clamped to the horizon: from ready until killed, retired,
/// or the horizon. Empty (`None`) if it never became ready in time.
fn accepting_interval(lc: &ReplicaLifecycle, horizon_s: f64) -> Option<(f64, f64)> {
    let end = lc
        .killed_s
        .or(lc.retire_s)
        .unwrap_or(horizon_s)
        .min(horizon_s);
    (end > lc.ready_s).then_some((lc.ready_s, end))
}

/// Accepting replica-seconds per `window_s`-second control window
/// (`n_windows` of them), from the lifecycle log.
pub fn accepting_capacity_per_window(
    lifecycles: &[ReplicaLifecycle],
    window_s: f64,
    n_windows: usize,
) -> Vec<f64> {
    let mut cap = vec![0.0f64; n_windows];
    let horizon = n_windows as f64 * window_s;
    for lc in lifecycles {
        let Some((start, end)) = accepting_interval(lc, horizon) else {
            continue;
        };
        let first = (start / window_s) as usize;
        let last = ((end / window_s).ceil() as usize).min(n_windows);
        for (w, c) in cap.iter_mut().enumerate().take(last).skip(first) {
            let w0 = w as f64 * window_s;
            let w1 = w0 + window_s;
            *c += (end.min(w1) - start.max(w0)).max(0.0);
        }
    }
    cap
}

/// Seconds within `[0, horizon_s)` covered by *no* accepting replica
/// — total fleet blackout time. 0.0 for any fault-free replay that
/// keeps its `min_replicas ≥ 1` guarantee.
pub fn unavailability_s(lifecycles: &[ReplicaLifecycle], horizon_s: f64) -> f64 {
    let mut intervals: Vec<(f64, f64)> = lifecycles
        .iter()
        .filter_map(|lc| accepting_interval(lc, horizon_s))
        .collect();
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut uncovered = 0.0;
    let mut cursor = 0.0f64;
    for (start, end) in intervals {
        if start > cursor {
            uncovered += start - cursor;
        }
        cursor = cursor.max(end);
        if cursor >= horizon_s {
            return uncovered;
        }
    }
    uncovered + (horizon_s - cursor).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc(ready: f64, killed: Option<f64>, retire: Option<f64>) -> ReplicaLifecycle {
        ReplicaLifecycle {
            spawn_s: ready,
            ready_s: ready,
            retire_s: retire,
            killed_s: killed,
            end_s: killed.or(retire).unwrap_or(100.0),
            requests: 0,
        }
    }

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RetryPolicy { backoff_base_s: 1.0, backoff_cap_s: 8.0, ..Default::default() };
        assert_eq!(p.backoff_s(1), 0.0, "first dispatch pays nothing");
        assert_eq!(p.backoff_s(2), 0.0, "first retry waits only for detection");
        assert_eq!(p.backoff_s(3), 1.0);
        assert_eq!(p.backoff_s(4), 2.0);
        assert_eq!(p.backoff_s(5), 4.0);
        assert_eq!(p.backoff_s(6), 8.0);
        assert_eq!(p.backoff_s(7), 8.0, "capped");
        assert_eq!(p.backoff_s(200), 8.0, "huge attempts don't overflow");
    }

    #[test]
    fn schedule_validation() {
        assert!(FaultSchedule::none().validate().is_ok());
        assert!(FaultSchedule::none().is_empty());
        let mut s = FaultSchedule::none();
        s.events = vec![
            FaultEvent { t_s: 5.0, kind: FaultKind::KillReplica { pick: 1 } },
            FaultEvent { t_s: 2.0, kind: FaultKind::KillReplica { pick: 0 } },
        ];
        assert!(s.validate().unwrap_err().contains("sorted"));
        s.events.swap(0, 1);
        assert!(s.validate().is_ok());
        s.events.push(FaultEvent { t_s: 9.0, kind: FaultKind::GroupOutage { group: 3 } });
        assert!(s.validate().unwrap_err().contains("out of range"));
        s.groups = 4;
        assert!(s.validate().is_ok());
        s.detect_s = f64::NAN;
        assert!(s.validate().is_err());
        let bad_retry = RetryPolicy { max_attempts: 0, ..Default::default() };
        assert!(bad_retry.validate().is_err());
    }

    #[test]
    fn capacity_and_unavailability_from_lifecycles() {
        // Replica 0 accepts [0, 10) then dies; replica 1 accepts
        // [15, 40). Blackout: [10, 15).
        let lcs = vec![lc(0.0, Some(10.0), None), lc(15.0, None, None)];
        let cap = accepting_capacity_per_window(&lcs, 10.0, 4);
        assert_eq!(cap.len(), 4);
        assert!((cap[0] - 10.0).abs() < 1e-9);
        assert!((cap[1] - 5.0).abs() < 1e-9);
        assert!((cap[2] - 10.0).abs() < 1e-9);
        assert!((cap[3] - 10.0).abs() < 1e-9);
        assert!((unavailability_s(&lcs, 40.0) - 5.0).abs() < 1e-9);
        // Overlapping replicas leave no gap.
        let healthy = vec![lc(0.0, None, None), lc(5.0, None, Some(20.0))];
        assert_eq!(unavailability_s(&healthy, 40.0), 0.0);
        // No replica ever: the whole horizon is dark.
        assert_eq!(unavailability_s(&[], 40.0), 40.0);
    }

    #[test]
    fn availability_ratios_are_nan_free_on_empty_runs() {
        let empty = AvailabilityStats {
            offered: 0,
            attempts: 0,
            completed: 0,
            lost_attempts: 0,
            retries: 0,
            failed: 0,
            replicas_killed: 0,
            unavailability_s: 0.0,
            window_capacity_s: Vec::new(),
        };
        assert_eq!(empty.retry_amplification(), 1.0);
    }
}
