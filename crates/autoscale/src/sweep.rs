//! The policy × trace frontier sweep: run every scaling policy over
//! every trace and tabulate cost (billed replica-seconds) against
//! SLO attainment and goodput — the capacity-planning frontier the
//! autoscaling tier exists to produce.
//!
//! Cells are independent controller replays evaluated on a
//! [`SweepRunner`] (each cell's replica simulations parallelize on
//! the same runner's nested budget), collected in grid order:
//! traces outer, policies inner. Output is byte-identical for every
//! `--jobs` value because each controller trajectory is serial and
//! deterministic.

use crate::controller::{AutoscaleConfig, AutoscaleController, ElasticFleetReport};
use crate::policy::ScalingPolicy;
use seesaw_engine::SweepRunner;
use seesaw_fleet::sweep::ReplicaBuilder;
use seesaw_workload::Request;
use serde::{Deserialize, Serialize};

/// One frontier cell: a policy replayed over a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// The scaling policy (its `Display` name labels the row).
    pub policy: ScalingPolicy,
    /// Trace name (e.g. `"diurnal"`, `"rush-hours"`).
    pub trace: String,
    /// Requests in the trace.
    pub n_requests: usize,
    /// Measured SLO attainment over the whole trace.
    pub attainment: f64,
    /// SLO-meeting requests per second over the fleet makespan.
    pub goodput_rps: f64,
    /// Billed replica-seconds — the cost axis.
    pub replica_seconds: f64,
    /// Time-averaged replica count over the horizon.
    pub mean_replicas: f64,
    /// Most replicas ever live at once.
    pub peak_replicas: usize,
    /// Scale events in the decision log.
    pub scale_events: usize,
    /// The full elastic run behind the numbers.
    pub report: ElasticFleetReport,
}

/// A completed policy × trace frontier sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierSweep {
    /// Replica configuration label (replica 0's).
    pub label: String,
    /// Single-replica offline capacity the scenario was sized
    /// against, requests/second.
    pub capacity_rps: f64,
    /// Controller configuration shared by every cell.
    pub config: AutoscaleConfig,
    /// Trace names, in row order.
    pub traces: Vec<String>,
    /// Policy names, in column order.
    pub policies: Vec<String>,
    /// Cells in row-major traces × policies order.
    pub points: Vec<FrontierPoint>,
}

impl FrontierSweep {
    /// The cell for (`trace`, `policy` display name), if swept.
    pub fn point(&self, trace: &str, policy: &str) -> Option<&FrontierPoint> {
        self.points
            .iter()
            .find(|p| p.trace == trace && p.policy.to_string() == policy)
    }
}

/// Run the policy × trace grid. `capacity` is the pre-measured
/// single-replica offline capacity (see
/// [`seesaw_fleet::offline_capacity`]) recorded in the sweep header;
/// traces carry their own absolute arrival times (no rescaling
/// happens here — the frontier compares policies on *one* fixed
/// day, not across loads).
pub fn frontier_sweep_with(
    runner: &SweepRunner,
    build: ReplicaBuilder,
    config: AutoscaleConfig,
    policies: &[ScalingPolicy],
    traces: &[(String, Vec<Request>)],
    (capacity_rps, label): (f64, &str),
) -> FrontierSweep {
    assert!(!policies.is_empty(), "frontier sweep needs policies");
    assert!(!traces.is_empty(), "frontier sweep needs traces");
    let cells: Vec<(usize, usize)> = (0..traces.len())
        .flat_map(|t| (0..policies.len()).map(move |p| (t, p)))
        .collect();
    let points = runner.map(&cells, |&(t, p)| {
        let (trace_name, requests) = &traces[t];
        let controller = AutoscaleController::new(config, policies[p]);
        let report = controller.run_with(runner, build, requests);
        FrontierPoint {
            policy: policies[p],
            trace: trace_name.clone(),
            n_requests: requests.len(),
            attainment: report.attainment(),
            goodput_rps: report.goodput_rps(),
            replica_seconds: report.replica_seconds,
            mean_replicas: report.mean_replicas(),
            peak_replicas: report.peak_replicas,
            scale_events: report.events.len(),
            report,
        }
    });
    FrontierSweep {
        label: label.into(),
        capacity_rps,
        config,
        traces: traces.iter().map(|(n, _)| n.clone()).collect(),
        policies: policies.iter().map(ScalingPolicy::to_string).collect(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_engine::vllm::VllmEngine;
    use seesaw_engine::{OnlineEngine, SchedulingPolicy};
    use seesaw_fleet::RouterPolicy;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::presets;
    use seesaw_parallel::ParallelConfig;
    use seesaw_workload::{ArrivalDist, SloSpec, WorkloadGen};
    use std::sync::Arc;

    fn builder() -> impl Fn(usize) -> Box<dyn OnlineEngine> + Sync {
        let cluster = Arc::new(ClusterSpec::a10x4());
        let model = Arc::new(presets::llama2_13b());
        move |_| {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&cluster),
                    Arc::clone(&model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            )
        }
    }

    fn small_cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            window_s: 5.0,
            warmup_s: 5.0,
            min_replicas: 1,
            max_replicas: 4,
            router: RouterPolicy::JoinShortestQueue,
            slo: SloSpec { ttft_s: 15.0, tpot_s: 0.05 },
            capacity_rps: 2.5,
        }
    }

    fn trace(n: usize, rate: f64, seed: u64) -> Vec<Request> {
        let base = WorkloadGen::constant(512, 32).generate(n);
        ArrivalDist::Poisson { rate }.attach(&base, seed).expect("valid")
    }

    #[test]
    fn frontier_covers_the_grid_and_is_runner_invariant() {
        let build = builder();
        let traces = vec![
            ("light".to_string(), trace(20, 0.4, 1)),
            ("heavy".to_string(), trace(40, 3.0, 2)),
        ];
        let policies = [
            ScalingPolicy::Static { n: 2 },
            ScalingPolicy::reactive_default(),
        ];
        let run = |runner: &SweepRunner| {
            frontier_sweep_with(runner, &build, small_cfg(), &policies, &traces, (0.6, "T2P2"))
        };
        let serial = run(&SweepRunner::serial());
        let parallel = run(&SweepRunner::new(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.points.len(), 4);
        assert_eq!(serial.traces, vec!["light", "heavy"]);
        assert_eq!(serial.policies, vec!["static-2", "reactive"]);
        // Row-major: first two cells are the light trace.
        assert_eq!(serial.points[0].trace, "light");
        assert_eq!(serial.points[1].trace, "light");
        assert_eq!(serial.points[2].trace, "heavy");
        let p = serial.point("heavy", "reactive").expect("cell exists");
        assert_eq!(p.n_requests, 40);
        assert!(p.replica_seconds > 0.0);
        // Static-2 on the light trace bills exactly 2 x horizon
        // (nothing to drain past it).
        let s = serial.point("light", "static-2").unwrap();
        assert!(s.replica_seconds >= 2.0 * s.report.horizon_s - 1e-9);
        assert_eq!(s.scale_events, 0);
    }
}
