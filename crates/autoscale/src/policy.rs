//! Scaling policies: how an elastic fleet decides, at each control
//! window boundary, whether to grow, shrink, or hold its replica
//! count.
//!
//! Policies act on the cheap, *a-priori* signals a production
//! autoscaler actually has — queue depth, offered load, estimated
//! utilization, and an estimated-TTFT attainment proxy from the
//! router's virtual queues (see
//! [`crate::controller::WindowSignals`]) — never on measured tail
//! latencies, which only exist after the fact. The controller
//! enforces the cooldown between scale events and the
//! `[min_replicas, max_replicas]` bounds; policies just propose.

use crate::controller::WindowSignals;
use serde::{Deserialize, Serialize};

/// What a policy wants done at a window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDecision {
    /// Keep the current replica count.
    Hold,
    /// Spawn this many replicas (they pay warm-up before accepting).
    Up(usize),
    /// Retire this many replicas (they drain in-flight work first).
    Down(usize),
}

/// A replica-count policy evaluated once per control window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalingPolicy {
    /// A fixed fleet of `n` replicas — the baseline every elastic
    /// policy is judged against (provision-for-peak vs
    /// provision-for-mean are just different `n`).
    Static {
        /// Replica count, held for the whole trace.
        n: usize,
    },
    /// Scale on queue-depth, utilization, and estimated-attainment
    /// bounds, with hysteresis (each down bound well below its up
    /// bound) so the fleet does not flap around a single threshold,
    /// and a cooldown between events so one burst triggers one
    /// action, not one per window.
    ///
    /// The queue bound catches genuine overload (backlog growth, ρ
    /// > 1); the utilization bound catches the *latency* failure mode
    /// that precedes it — continuous-batching engines blow the TPOT
    /// SLO well before their queues grow, so a queue-only autoscaler
    /// converges on a fleet that keeps up with load while missing the
    /// SLO all day.
    ReactiveThreshold {
        /// Scale up when estimated outstanding requests per accepting
        /// replica exceed this.
        up_queue_per_replica: f64,
        /// Scale down only when estimated outstanding requests per
        /// accepting replica are below this (must be < the up bound).
        down_queue_per_replica: f64,
        /// Scale up when estimated per-replica utilization (offered
        /// work per accepting replica-second, capacity-calibrated)
        /// exceeds this.
        up_utilization: f64,
        /// Scale down only when estimated per-replica utilization is
        /// below this (must be < the up bound).
        down_utilization: f64,
        /// Scale up when the window's estimated TTFT attainment
        /// (fraction of arrivals whose estimated queue wait meets the
        /// TTFT SLO) falls below this; scale down requires being at
        /// or above it.
        attainment_floor: f64,
        /// Replicas added or removed per event.
        step: usize,
        /// Windows that must pass after a scale event before the next.
        cooldown_windows: usize,
    },
    /// Track a target per-replica utilization (offered work seconds
    /// per accepting replica-second), the classic
    /// CPU-utilization-style autoscaler: desired count =
    /// `ceil(ready × utilization / target)`. Scale-ups jump straight
    /// to the desired count; scale-downs step by one replica per
    /// event (conservative drain).
    TargetUtilization {
        /// Desired per-replica utilization in (0, 1).
        target: f64,
        /// Windows that must pass after a scale event before the next.
        cooldown_windows: usize,
    },
}

impl ScalingPolicy {
    /// The default reactive policy. The utilization band (0.30–0.55)
    /// brackets the SLO-healthy load range on the default scenario:
    /// the TPOT knee sits near 0.6× per-replica capacity, so the
    /// up-trigger fires with headroom while the down-trigger waits
    /// for genuine slack.
    pub fn reactive_default() -> Self {
        ScalingPolicy::ReactiveThreshold {
            up_queue_per_replica: 2.0,
            down_queue_per_replica: 0.25,
            up_utilization: 0.55,
            down_utilization: 0.30,
            attainment_floor: 0.95,
            step: 1,
            cooldown_windows: 2,
        }
    }

    /// The default utilization-tracking policy (target 45%, the
    /// middle of the SLO-healthy load band on the default scenario).
    pub fn target_utilization_default() -> Self {
        ScalingPolicy::TargetUtilization { target: 0.45, cooldown_windows: 2 }
    }

    /// Validate the policy's parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ScalingPolicy::Static { n } => {
                if n == 0 {
                    return Err("static policy needs at least one replica".into());
                }
                Ok(())
            }
            ScalingPolicy::ReactiveThreshold {
                up_queue_per_replica,
                down_queue_per_replica,
                up_utilization,
                down_utilization,
                attainment_floor,
                step,
                ..
            } => {
                for (name, v) in [
                    ("up_queue_per_replica", up_queue_per_replica),
                    ("down_queue_per_replica", down_queue_per_replica),
                    ("up_utilization", up_utilization),
                    ("down_utilization", down_utilization),
                ] {
                    if !(v.is_finite() && v >= 0.0) {
                        return Err(format!("{name} must be finite and >= 0, got {v}"));
                    }
                }
                for (pair, down, up) in [
                    ("queue", down_queue_per_replica, up_queue_per_replica),
                    ("utilization", down_utilization, up_utilization),
                ] {
                    if down >= up {
                        return Err(format!(
                            "hysteresis requires the down {pair} bound {down} < the up \
                             {pair} bound {up}"
                        ));
                    }
                }
                if !(attainment_floor.is_finite() && (0.0..=1.0).contains(&attainment_floor)) {
                    return Err(format!(
                        "attainment_floor must be in [0, 1], got {attainment_floor}"
                    ));
                }
                if step == 0 {
                    return Err("reactive step must be at least 1".into());
                }
                Ok(())
            }
            ScalingPolicy::TargetUtilization { target, .. } => {
                if !(target.is_finite() && target > 0.0 && target < 1.0) {
                    return Err(format!(
                        "utilization target must be in (0, 1), got {target}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Replicas provisioned (warm) at t = 0, before any signal exists.
    pub fn initial_replicas(&self, min_replicas: usize, max_replicas: usize) -> usize {
        match *self {
            ScalingPolicy::Static { n } => n.clamp(min_replicas, max_replicas),
            _ => min_replicas,
        }
    }

    /// Windows that must pass after a scale event before this policy
    /// may act again (0 for Static, which never acts).
    pub fn cooldown_windows(&self) -> usize {
        match *self {
            ScalingPolicy::Static { .. } => 0,
            ScalingPolicy::ReactiveThreshold { cooldown_windows, .. } => cooldown_windows,
            ScalingPolicy::TargetUtilization { cooldown_windows, .. } => cooldown_windows,
        }
    }

    /// Propose an action from the window's signals. `provisioned`
    /// counts live replicas (accepting + warming), `ready` only the
    /// accepting ones; bounds are enforced here so a decision is
    /// always directly applicable. Warming replicas block scale-downs
    /// (capacity is already on the way — retiring while it lands is
    /// the classic flap).
    pub fn decide(
        &self,
        s: &WindowSignals,
        min_replicas: usize,
        max_replicas: usize,
    ) -> ScaleDecision {
        let provisioned = s.provisioned;
        let ready = s.ready.max(1);
        match *self {
            ScalingPolicy::Static { .. } => ScaleDecision::Hold,
            ScalingPolicy::ReactiveThreshold {
                up_queue_per_replica,
                down_queue_per_replica,
                up_utilization,
                down_utilization,
                attainment_floor,
                step,
                ..
            } => {
                let per_replica = s.queue_depth / ready as f64;
                let overloaded = per_replica > up_queue_per_replica
                    || s.utilization_est > up_utilization
                    || s.est_attainment < attainment_floor;
                let idle = per_replica < down_queue_per_replica
                    && s.utilization_est < down_utilization
                    && s.est_attainment >= attainment_floor;
                if overloaded && provisioned < max_replicas {
                    ScaleDecision::Up(step.min(max_replicas - provisioned))
                } else if idle && s.provisioned == s.ready && provisioned > min_replicas {
                    ScaleDecision::Down(step.min(provisioned - min_replicas))
                } else {
                    ScaleDecision::Hold
                }
            }
            ScalingPolicy::TargetUtilization { target, .. } => {
                let desired = ((ready as f64 * s.utilization_est / target).ceil() as usize)
                    .clamp(min_replicas, max_replicas);
                if desired > provisioned {
                    ScaleDecision::Up(desired - provisioned)
                } else if desired < provisioned && s.provisioned == s.ready {
                    ScaleDecision::Down(1)
                } else {
                    ScaleDecision::Hold
                }
            }
        }
    }
}

impl std::fmt::Display for ScalingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ScalingPolicy::Static { n } => write!(f, "static-{n}"),
            ScalingPolicy::ReactiveThreshold { .. } => write!(f, "reactive"),
            ScalingPolicy::TargetUtilization { target, .. } => {
                write!(f, "target-util-{:.0}%", target * 100.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(queue_depth: f64, ready: usize, util: f64, attain: f64) -> WindowSignals {
        WindowSignals {
            t0: 0.0,
            t1: 60.0,
            arrivals: 10,
            offered_rps: 10.0 / 60.0,
            queue_depth,
            est_attainment: attain,
            utilization_est: util,
            ready,
            provisioned: ready,
            failures: 0,
        }
    }

    #[test]
    fn reactive_scales_up_on_queue_or_attainment_and_respects_bounds() {
        let p = ScalingPolicy::reactive_default();
        // Deep queue: up.
        assert_eq!(p.decide(&signals(8.0, 2, 0.2, 1.0), 1, 8), ScaleDecision::Up(1));
        // High utilization with a drained queue: still up (the TPOT
        // failure mode precedes backlog growth).
        assert_eq!(p.decide(&signals(0.0, 2, 0.7, 1.0), 1, 8), ScaleDecision::Up(1));
        // Attainment collapse with shallow queue: still up.
        assert_eq!(p.decide(&signals(1.0, 2, 0.5, 0.5), 1, 8), ScaleDecision::Up(1));
        // At the max: hold even when overloaded.
        assert_eq!(p.decide(&signals(20.0, 8, 0.99, 0.2), 1, 8), ScaleDecision::Hold);
        // Idle: down, but never below min.
        assert_eq!(p.decide(&signals(0.0, 4, 0.1, 1.0), 1, 8), ScaleDecision::Down(1));
        assert_eq!(p.decide(&signals(0.0, 1, 0.1, 1.0), 1, 8), ScaleDecision::Hold);
    }

    #[test]
    fn reactive_hysteresis_band_holds() {
        let p = ScalingPolicy::reactive_default();
        // Queue depth and utilization between their down and up
        // bounds: hold.
        assert_eq!(p.decide(&signals(2.0, 2, 0.45, 1.0), 1, 8), ScaleDecision::Hold);
        // Queue drained but utilization not yet idle: hold, not down.
        assert_eq!(p.decide(&signals(0.0, 2, 0.45, 1.0), 1, 8), ScaleDecision::Hold);
    }

    #[test]
    fn warming_replicas_block_scale_down() {
        let p = ScalingPolicy::reactive_default();
        let mut s = signals(0.0, 4, 0.1, 1.0);
        s.provisioned = 5; // one replica still warming
        assert_eq!(p.decide(&s, 1, 8), ScaleDecision::Hold);
    }

    #[test]
    fn target_utilization_tracks_the_ratio() {
        let p = ScalingPolicy::TargetUtilization { target: 0.5, cooldown_windows: 0 };
        // 4 ready at 80% -> desired ceil(4*0.8/0.5) = 7.
        assert_eq!(p.decide(&signals(0.0, 4, 0.8, 1.0), 1, 16), ScaleDecision::Up(3));
        // 4 ready at 10% -> desired 1, but down steps by one.
        assert_eq!(p.decide(&signals(0.0, 4, 0.1, 1.0), 1, 16), ScaleDecision::Down(1));
        // On target: hold.
        assert_eq!(p.decide(&signals(0.0, 4, 0.5, 1.0), 1, 16), ScaleDecision::Hold);
        // Desired clamps to max.
        assert_eq!(p.decide(&signals(0.0, 8, 0.9, 1.0), 1, 10), ScaleDecision::Up(2));
    }

    #[test]
    fn static_never_moves() {
        let p = ScalingPolicy::Static { n: 5 };
        assert_eq!(p.decide(&signals(50.0, 5, 0.99, 0.0), 1, 16), ScaleDecision::Hold);
        assert_eq!(p.initial_replicas(1, 16), 5);
        assert_eq!(p.initial_replicas(1, 3), 3, "static size clamps to bounds");
    }

    #[test]
    fn validation_rejects_inverted_hysteresis_and_bad_targets() {
        let bad = ScalingPolicy::ReactiveThreshold {
            up_queue_per_replica: 1.0,
            down_queue_per_replica: 2.0,
            up_utilization: 0.6,
            down_utilization: 0.3,
            attainment_floor: 0.9,
            step: 1,
            cooldown_windows: 1,
        };
        assert!(bad.validate().is_err());
        let bad_util = ScalingPolicy::ReactiveThreshold {
            up_queue_per_replica: 2.0,
            down_queue_per_replica: 1.0,
            up_utilization: 0.3,
            down_utilization: 0.6,
            attainment_floor: 0.9,
            step: 1,
            cooldown_windows: 1,
        };
        assert!(bad_util.validate().is_err());
        assert!(ScalingPolicy::TargetUtilization { target: 1.5, cooldown_windows: 0 }
            .validate()
            .is_err());
        assert!(ScalingPolicy::Static { n: 0 }.validate().is_err());
        assert!(ScalingPolicy::reactive_default().validate().is_ok());
        assert!(ScalingPolicy::target_utilization_default().validate().is_ok());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ScalingPolicy::Static { n: 4 }.to_string(), "static-4");
        assert_eq!(ScalingPolicy::reactive_default().to_string(), "reactive");
        assert_eq!(
            ScalingPolicy::target_utilization_default().to_string(),
            "target-util-45%"
        );
    }
}
