//! Multi-window SLO burn-rate alerting over streaming window metrics.
//!
//! Production fleets watch an SLO's **error budget**: with an
//! objective of, say, 95% attainment, the budget is the 5% of traffic
//! allowed to miss. The *burn rate* over a span of windows is the
//! observed error fraction divided by that budget — burn 1.0 spends
//! the budget exactly on schedule, burn 10 exhausts it ten times too
//! fast. The classic multi-window rule (Google SRE workbook §5)
//! pages only when **both** a short window (fast detection) and a
//! long window (de-noising) burn above threshold, and uses hysteresis
//! so a single calm window does not flap the alert closed.
//!
//! [`AlertEngine`] evaluates [`AlertRule`]s *streamingly*: the
//! controller feeds it one [`WindowMetrics`] at a time as the causal
//! replay closes each window, and typed [`AlertEvent`]s come out —
//! onto the report and, when telemetry is on, the recorder's alert
//! track. Everything is deterministic: alerts are a pure fold over
//! the window sequence.
//!
//! The chaos tier scores rules against its injected ground truth with
//! [`score_detection`]: median detection latency against seeded
//! correlated outages, missed outages, and false fires on the
//! fault-free day.

use crate::faults::{FaultKind, FaultSchedule};
use seesaw_workload::WindowMetrics;
use serde::{Deserialize, Serialize};

/// A multi-window burn-rate alert rule. `Copy`, so controllers and
/// sweep grids pass it by value like every other config knob; the
/// display name (e.g. `burn6x-1s/3l@0.90`) is derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Attainment objective the error budget is defined against
    /// (e.g. 0.90: up to 10% of arrivals may miss the SLO).
    pub objective: f64,
    /// Trailing windows in the short (fast-detection) span, ≥ 1.
    pub short_windows: usize,
    /// Trailing windows in the long (de-noising) span, ≥
    /// `short_windows`.
    pub long_windows: usize,
    /// Burn-rate threshold: fire when **both** spans burn at ≥ this
    /// multiple of the budget rate.
    pub burn: f64,
    /// Hysteresis: consecutive short-span evaluations below threshold
    /// before an active alert clears, ≥ 1.
    pub clear_windows: usize,
}

impl Default for AlertRule {
    /// The default paging rule: short span 1 window, long span 3,
    /// burn ≥ 4× on a 90% objective, 2 calm windows to clear. Tuned
    /// against measured frontiers: a correlated group outage collapses
    /// attainment toward 0 (burn → 10) and fires on the first or
    /// second window it touches even when it lands in the diurnal
    /// trough, while the fault-free default day's worst scale-up-lag
    /// window burns 1.8× (rush-hours trace, reactive policy) — a
    /// 2.2× margin below threshold, so a clean day never pages.
    fn default() -> Self {
        AlertRule {
            objective: 0.90,
            short_windows: 1,
            long_windows: 3,
            burn: 4.0,
            clear_windows: 2,
        }
    }
}

impl AlertRule {
    /// Validate the rule.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.objective > 0.0 && self.objective < 1.0) {
            return Err(format!(
                "alert objective must be in (0, 1), got {}",
                self.objective
            ));
        }
        if self.short_windows == 0 {
            return Err("short span must cover at least 1 window".into());
        }
        if self.long_windows < self.short_windows {
            return Err(format!(
                "long span ({}) must cover at least the short span ({})",
                self.long_windows, self.short_windows
            ));
        }
        if !(self.burn.is_finite() && self.burn > 0.0) {
            return Err(format!("burn threshold must be finite and > 0, got {}", self.burn));
        }
        if self.clear_windows == 0 {
            return Err("hysteresis must be at least 1 window".into());
        }
        Ok(())
    }
}

impl std::fmt::Display for AlertRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "burn{}x-{}s/{}l@{:.2}",
            self.burn, self.short_windows, self.long_windows, self.objective
        )
    }
}

/// What an [`AlertEvent`] announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// The rule started firing at this window boundary.
    Fire,
    /// The rule cleared after its hysteresis ran down.
    Clear,
}

/// One typed alert transition, emitted at a window boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Display name of the rule that transitioned.
    pub rule: String,
    /// Fire or clear.
    pub kind: AlertKind,
    /// The window boundary the transition was observed at, seconds.
    pub t_s: f64,
    /// Index of the window that closed the evaluation.
    pub window: usize,
    /// Short-span burn rate at the transition.
    pub short_burn: f64,
    /// Long-span burn rate at the transition.
    pub long_burn: f64,
}

/// Per-rule streaming evaluation state.
#[derive(Debug, Clone)]
struct RuleState {
    rule: AlertRule,
    name: String,
    active: bool,
    calm_streak: usize,
}

/// Streaming burn-rate evaluator: feed windows in order, collect
/// typed transitions. A pure deterministic fold — no clocks, no
/// randomness — so replays are byte-identical across `--jobs`.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<RuleState>,
    /// Trailing `(arrivals, missed)` ring, sized to the longest span.
    history: Vec<(u64, u64)>,
    window: usize,
}

impl AlertEngine {
    /// An engine evaluating `rules`; panics on an invalid rule.
    pub fn new(rules: &[AlertRule]) -> Self {
        for r in rules {
            r.validate().unwrap_or_else(|e| panic!("invalid alert rule: {e}"));
        }
        AlertEngine {
            rules: rules
                .iter()
                .map(|&rule| RuleState {
                    rule,
                    name: rule.to_string(),
                    active: false,
                    calm_streak: 0,
                })
                .collect(),
            history: Vec::new(),
            window: 0,
        }
    }

    /// Burn rate over the trailing `span` windows for `objective`:
    /// observed error fraction (arrival-weighted; spans with no
    /// arrivals burn 0 — quiet is not an outage) over the error
    /// budget.
    fn burn(&self, span: usize, objective: f64) -> f64 {
        let take = span.min(self.history.len());
        let (mut arrivals, mut missed) = (0u64, 0u64);
        for &(a, m) in &self.history[self.history.len() - take..] {
            arrivals += a;
            missed += m;
        }
        if arrivals == 0 {
            return 0.0;
        }
        (missed as f64 / arrivals as f64) / (1.0 - objective)
    }

    /// Fold one closed window in and return any transitions it
    /// caused. Windows must arrive in axis order.
    pub fn observe(&mut self, w: &WindowMetrics) -> Vec<AlertEvent> {
        let arrivals = w.arrivals as u64;
        // attainment = met/arrivals exactly; recover the integer.
        let met = w
            .attainment
            .map_or(0.0, |a| (a * w.arrivals as f64).round()) as u64;
        self.history.push((arrivals, arrivals - met.min(arrivals)));
        let longest = self.rules.iter().map(|r| r.rule.long_windows).max().unwrap_or(1);
        if self.history.len() > longest {
            self.history.remove(0);
        }
        let window = self.window;
        self.window += 1;
        let mut events = Vec::new();
        for i in 0..self.rules.len() {
            let rule = self.rules[i].rule;
            let short = self.burn(rule.short_windows, rule.objective);
            let long = self.burn(rule.long_windows, rule.objective);
            let s = &mut self.rules[i];
            if !s.active {
                if short >= rule.burn && long >= rule.burn {
                    s.active = true;
                    s.calm_streak = 0;
                    events.push(AlertEvent {
                        rule: s.name.clone(),
                        kind: AlertKind::Fire,
                        t_s: w.t1,
                        window,
                        short_burn: short,
                        long_burn: long,
                    });
                }
            } else if short < rule.burn {
                s.calm_streak += 1;
                if s.calm_streak >= rule.clear_windows {
                    s.active = false;
                    s.calm_streak = 0;
                    events.push(AlertEvent {
                        rule: s.name.clone(),
                        kind: AlertKind::Clear,
                        t_s: w.t1,
                        window,
                        short_burn: short,
                        long_burn: long,
                    });
                }
            } else {
                s.calm_streak = 0;
            }
        }
        events
    }

    /// Evaluate a whole window axis at once (the post-hoc
    /// convenience; identical to streaming the windows through
    /// [`AlertEngine::observe`]).
    pub fn evaluate(rules: &[AlertRule], windows: &[WindowMetrics]) -> Vec<AlertEvent> {
        let mut engine = AlertEngine::new(rules);
        windows.iter().flat_map(|w| engine.observe(w)).collect()
    }
}

/// How one rule's alerts line up against a fault schedule's injected
/// correlated outages — the detection-frontier cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionScore {
    /// Correlated group outages in the schedule.
    pub outages: usize,
    /// Outages covered by a fire at or after the outage instant and
    /// before the next outage (or the end of time).
    pub detected: usize,
    /// Outages never flagged.
    pub missed: usize,
    /// Median seconds from outage to the covering fire; `None` when
    /// nothing was detected.
    pub median_latency_s: Option<f64>,
    /// Fire events attributable to no outage (fires before the first
    /// outage, or extra fires between two outages beyond the first).
    pub false_fires: usize,
}

/// Score `alerts` (one run's fire/clear stream) against the
/// schedule's correlated outages. Each outage is matched to the first
/// fire in `[outage, next outage)`; fires that cover no outage are
/// false positives. Kill events are ignored — single-replica kills
/// are below the paging bar by design.
pub fn score_detection(alerts: &[AlertEvent], faults: &FaultSchedule) -> DetectionScore {
    let outage_times: Vec<f64> = faults
        .events
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::GroupOutage { .. }))
        .map(|e| e.t_s)
        .collect();
    let fires: Vec<f64> = alerts
        .iter()
        .filter(|a| a.kind == AlertKind::Fire)
        .map(|a| a.t_s)
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    let mut covered = vec![false; fires.len()];
    for (i, &t0) in outage_times.iter().enumerate() {
        let t1 = outage_times.get(i + 1).copied().unwrap_or(f64::INFINITY);
        if let Some(j) = fires.iter().position(|&f| f >= t0 && f < t1) {
            covered[j] = true;
            latencies.push(fires[j] - t0);
        }
    }
    latencies.sort_by(f64::total_cmp);
    let median_latency_s = if latencies.is_empty() {
        None
    } else {
        Some(latencies[(latencies.len() - 1) / 2])
    };
    DetectionScore {
        outages: outage_times.len(),
        detected: latencies.len(),
        missed: outage_times.len() - latencies.len(),
        median_latency_s,
        false_fires: covered.iter().filter(|&&c| !c).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultEvent;

    fn window(w: usize, arrivals: usize, met: usize) -> WindowMetrics {
        WindowMetrics {
            t0: w as f64 * 10.0,
            t1: (w + 1) as f64 * 10.0,
            arrivals,
            completions: arrivals,
            attainment: (arrivals > 0).then(|| met as f64 / arrivals as f64),
            goodput_rps: 0.0,
            ttft: None,
        }
    }

    #[test]
    fn default_rule_validates_and_displays() {
        let r = AlertRule::default();
        assert!(r.validate().is_ok());
        assert_eq!(r.to_string(), "burn4x-1s/3l@0.90");
        assert!(AlertRule { objective: 1.0, ..r }.validate().is_err());
        assert!(AlertRule { short_windows: 0, ..r }.validate().is_err());
        assert!(AlertRule { long_windows: 0, ..r }.validate().is_err());
        assert!(AlertRule { burn: 0.0, ..r }.validate().is_err());
        assert!(AlertRule { clear_windows: 0, ..r }.validate().is_err());
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let rules = [AlertRule::default()];
        let windows: Vec<WindowMetrics> =
            (0..50).map(|w| window(w, 100, 97)).collect();
        assert!(AlertEngine::evaluate(&rules, &windows).is_empty());
        // Quiet windows (no arrivals) burn nothing either.
        let quiet: Vec<WindowMetrics> = (0..50).map(|w| window(w, 0, 0)).collect();
        assert!(AlertEngine::evaluate(&rules, &quiet).is_empty());
    }

    #[test]
    fn outage_fires_fast_and_clears_with_hysteresis() {
        let rules = [AlertRule::default()];
        // 5 healthy windows, 2 collapsed ones, then recovery.
        let mut ws: Vec<WindowMetrics> = (0..5).map(|w| window(w, 100, 100)).collect();
        ws.push(window(5, 100, 5));
        ws.push(window(6, 100, 0));
        ws.extend((7..14).map(|w| window(w, 100, 100)));
        let events = AlertEngine::evaluate(&rules, &ws);
        assert_eq!(events.len(), 2, "one fire, one clear: {events:?}");
        assert_eq!(events[0].kind, AlertKind::Fire);
        // Short burn 0.95/0.10 = 9.5 ≥ 4 at window 5; long burn
        // (0.95/3)/0.1 ≈ 3.2 < 4 — fires at window 6 when the long
        // span catches up.
        assert_eq!(events[0].window, 6);
        assert_eq!(events[1].kind, AlertKind::Clear);
        // Two calm windows of hysteresis: clear at window 8.
        assert_eq!(events[1].window, 8);
        assert!(events[0].short_burn >= 4.0 && events[0].long_burn >= 4.0);
    }

    #[test]
    fn single_bad_window_inside_long_span_does_not_page() {
        // Long span de-noises: one collapsed window between healthy
        // neighbours keeps the 3-window burn below threshold.
        let rule = AlertRule { long_windows: 4, ..AlertRule::default() };
        let mut ws: Vec<WindowMetrics> = Vec::new();
        for w in 0..12 {
            ws.push(window(w, 100, if w == 6 { 40 } else { 100 }));
        }
        assert!(AlertEngine::evaluate(&[rule], &ws).is_empty());
    }

    #[test]
    fn detection_scoring_matches_ground_truth() {
        let mut faults = FaultSchedule::none();
        faults.groups = 2;
        faults.events = vec![
            FaultEvent { t_s: 100.0, kind: FaultKind::KillReplica { pick: 3 } },
            FaultEvent { t_s: 200.0, kind: FaultKind::GroupOutage { group: 0 } },
            FaultEvent { t_s: 500.0, kind: FaultKind::GroupOutage { group: 1 } },
            FaultEvent { t_s: 800.0, kind: FaultKind::GroupOutage { group: 0 } },
        ];
        let fire = |t_s: f64| AlertEvent {
            rule: "r".into(),
            kind: AlertKind::Fire,
            t_s,
            window: 0,
            short_burn: 9.0,
            long_burn: 9.0,
        };
        // Outage 1 detected at +30, outage 2 missed, outage 3 at +10;
        // one pre-outage false fire; kills never count.
        let alerts = vec![fire(50.0), fire(230.0), fire(810.0)];
        let score = score_detection(&alerts, &faults);
        assert_eq!(score.outages, 3);
        assert_eq!(score.detected, 2);
        assert_eq!(score.missed, 1);
        assert_eq!(score.false_fires, 1);
        assert_eq!(score.median_latency_s, Some(10.0));
        // No alerts at all: everything missed, nothing false.
        let none = score_detection(&[], &faults);
        assert_eq!((none.detected, none.missed, none.false_fires), (0, 3, 0));
        assert_eq!(none.median_latency_s, None);
    }
}
