//! The autoscaling controller: replay a long arrival trace through a
//! time-sliced elastic fleet, growing and shrinking the replica count
//! online.
//!
//! Time advances in fixed control windows. Within a window the
//! controller routes each arrival over the replicas *currently
//! accepting traffic* (warm, not retiring) using the fleet tier's
//! resumable [`Router`]; at the window boundary it reads the cheap
//! observable signals — queue depth, offered load, estimated
//! utilization, estimated TTFT attainment — and lets the
//! [`ScalingPolicy`] propose an action, subject to its cooldown:
//!
//! * **Scale up** spawns replicas that pay a warm-up delay
//!   (weight-load time) before accepting traffic; routing flows
//!   around them until they are ready, so warm-up manifests as
//!   *delayed capacity* — the still-warming replica leaves the rest
//!   of the fleet congested, which the measured TTFT/attainment pick
//!   up. Dispatch goes through
//!   [`seesaw_engine::OnlineEngine::run_ready`], whose ready-time
//!   clamp is the engine-level guard of the same contract (a no-op
//!   here because the router never hands a warming replica traffic,
//!   but load-bearing for streams assembled without the router).
//! * **Scale down** marks replicas as retiring: they stop receiving
//!   new requests and *drain* their in-flight work before
//!   disappearing — the replica's billed lifetime extends to its last
//!   completion.
//!
//! Routing decisions use only a-priori state (virtual queues and
//! roofline service estimates), so the whole decision trajectory is
//! deterministic and independent of the [`SweepRunner`]; the real
//! engine simulations run once per replica after the trajectory is
//! fixed, in parallel, and merge into an ordinary [`FleetReport`]
//! judged by measured (not estimated) latency. A [`ScalingPolicy::Static`]
//! trajectory never scales, which makes the elastic run collapse
//! exactly — byte-for-byte — onto the fixed [`seesaw_fleet::Fleet`]
//! of the same size.

use crate::alert::{AlertEngine, AlertEvent, AlertKind, AlertRule};
use crate::faults::{
    accepting_capacity_per_window, unavailability_s, AvailabilityStats, FailureEvent,
    FaultKind, FaultSchedule,
};
use crate::policy::{ScaleDecision, ScalingPolicy};
use seesaw_engine::driver::assert_arrivals_sorted;
use seesaw_engine::online::mean_lengths;
use seesaw_engine::{live_state, EngineReport, LiveState, OnlineEngine, ServiceRates, SweepRunner};
use seesaw_fleet::sweep::ReplicaBuilder;
use seesaw_fleet::telemetry::{record_request_spans, replica_track};
use seesaw_fleet::{FleetReport, Router, RouterPolicy};
use seesaw_telemetry::{
    fmt_secs, ControllerProfile, Instrument, ALERT_TRACK, CONTROLLER_TRACK, ROUTER_TRACK,
};
use seesaw_workload::{
    windowed_metrics, DispatchQueue, LatencyStats, Request, SloSpec, SummaryMode,
    WindowAccumulator, WindowMetrics,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

/// Elapsed seconds of an optional phase-timer start (0 when the timer
/// never started — profiling off).
fn lap(start: Option<Instant>) -> f64 {
    start.map_or(0.0, |t| t.elapsed().as_secs_f64())
}

/// Controller configuration shared by every policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Control-window length, seconds: signals are observed and
    /// decisions taken at these boundaries.
    pub window_s: f64,
    /// Warm-up (weight-load) delay a freshly spawned replica pays
    /// before it accepts traffic, seconds. Replicas provisioned at
    /// t = 0 start warm.
    pub warmup_s: f64,
    /// Fewest replicas the fleet may shrink to (≥ 1).
    pub min_replicas: usize,
    /// Most replicas the fleet may grow to.
    pub max_replicas: usize,
    /// Request-routing policy inside the fleet.
    pub router: RouterPolicy,
    /// The SLO decisions are proxied against and measurements judged
    /// by.
    pub slo: SloSpec,
    /// Measured single-replica offline capacity, requests/second —
    /// the calibration every signal is computed against (see
    /// [`seesaw_fleet::offline_capacity`]). The roofline service
    /// estimates the router ranks replicas with are steady-state
    /// token rates and run several-fold optimistic against the
    /// simulated engines; routing only needs their *relative* order,
    /// but utilization/backlog signals need absolute scale, exactly
    /// like a production autoscaler is calibrated against measured
    /// backend throughput.
    pub capacity_rps: f64,
}

impl AutoscaleConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.window_s.is_finite() && self.window_s > 0.0) {
            return Err(format!(
                "control window must be finite and > 0, got {}",
                self.window_s
            ));
        }
        if !(self.warmup_s.is_finite() && self.warmup_s >= 0.0) {
            return Err(format!(
                "warm-up delay must be finite and >= 0, got {}",
                self.warmup_s
            ));
        }
        if self.min_replicas == 0 {
            return Err("min_replicas must be at least 1".into());
        }
        if self.max_replicas < self.min_replicas {
            return Err(format!(
                "max_replicas {} must be >= min_replicas {}",
                self.max_replicas, self.min_replicas
            ));
        }
        if !(self.capacity_rps.is_finite() && self.capacity_rps > 0.0) {
            return Err(format!(
                "calibration capacity must be finite and > 0, got {}",
                self.capacity_rps
            ));
        }
        Ok(())
    }
}

impl Default for AutoscaleConfig {
    /// The `autoscale` bin's defaults: 5-minute control windows,
    /// 60-second weight-load warm-up, 1–16 replicas,
    /// join-shortest-queue routing, and the serving harness's SLO.
    fn default() -> Self {
        AutoscaleConfig {
            window_s: 300.0,
            warmup_s: 60.0,
            min_replicas: 1,
            max_replicas: 16,
            router: RouterPolicy::JoinShortestQueue,
            slo: SloSpec { ttft_s: 15.0, tpot_s: 0.05 },
            capacity_rps: 1.0,
        }
    }
}

/// The signals a policy sees at one window boundary — all a-priori
/// (router virtual-queue) state, the kind a production autoscaler
/// actually has before any request finishes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSignals {
    /// Window start, seconds (inclusive).
    pub t0: f64,
    /// Window end, seconds (exclusive) — the decision instant.
    pub t1: f64,
    /// Requests that arrived in the window.
    pub arrivals: usize,
    /// Offered load over the window, requests/second.
    pub offered_rps: f64,
    /// Outstanding requests at the window end. Under an estimated
    /// routing policy this is the capacity-calibrated fluid backlog
    /// (work not yet served, expressed in mean-request units; near 0
    /// whenever the fleet keeps up, growing when offered load exceeds
    /// capacity). Under a live policy
    /// ([`RouterPolicy::needs_live_state`]) it is the *measured*
    /// count of unfinished requests across accepting replicas,
    /// observed from their exact engine replays on the global clock.
    pub queue_depth: f64,
    /// Fraction of the window's arrivals whose *estimated* queue wait
    /// (fluid backlog over accepting replicas at the arrival instant)
    /// met the TTFT SLO (1.0 when nothing arrived).
    pub est_attainment: f64,
    /// Estimated utilization: capacity-calibrated offered
    /// service-seconds in the window per accepting replica-second.
    pub utilization_est: f64,
    /// Replicas accepting traffic at the window end.
    pub ready: usize,
    /// Live replicas at the window end (accepting + warming, not
    /// retiring or killed).
    pub provisioned: usize,
    /// Replicas killed by fault injection during the window (0 on
    /// every fault-free replay) — the failure signal a policy or the
    /// replacement logic reacts to.
    pub failures: usize,
}

/// One scale event in the decision log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// When the decision was taken (a window boundary), seconds.
    pub t_s: f64,
    /// Live replicas before the event.
    pub from: usize,
    /// Live replicas after the event.
    pub to: usize,
}

/// One replica's lifetime, as billed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicaLifecycle {
    /// When the replica was provisioned, seconds.
    pub spawn_s: f64,
    /// When it began accepting traffic (spawn + warm-up; 0 for the
    /// initial fleet), seconds.
    pub ready_s: f64,
    /// When it was told to retire (`None` = lived to the horizon),
    /// seconds.
    pub retire_s: Option<f64>,
    /// When fault injection killed it (`None` = never). Unlike a
    /// retire, a kill is immediate: nothing drains, in-flight work is
    /// lost, and billing stops at the kill instant.
    pub killed_s: Option<f64>,
    /// When it actually disappeared: after draining in-flight work
    /// (measured last completion), the kill instant for killed
    /// replicas, or the horizon for survivors.
    pub end_s: f64,
    /// Dispatch attempts routed to it (lost attempts included).
    pub requests: usize,
}

impl ReplicaLifecycle {
    /// Billed lifetime, seconds.
    pub fn billed_s(&self) -> f64 {
        self.end_s - self.spawn_s
    }
}

/// Outcome of one elastic-fleet trace replay: the merged fleet view
/// plus the control trajectory and the cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticFleetReport {
    /// The scaling policy that drove the trajectory.
    pub policy: ScalingPolicy,
    /// Controller configuration.
    pub config: AutoscaleConfig,
    /// Merged fleet run (every replica that ever existed, in spawn
    /// order; the assignment maps requests to those indices).
    pub fleet: FleetReport,
    /// Per-window signals, in window order.
    pub windows: Vec<WindowSignals>,
    /// Scale events, in time order.
    pub events: Vec<ScaleEvent>,
    /// Per-replica lifetimes, in spawn order.
    pub lifecycles: Vec<ReplicaLifecycle>,
    /// Replica kills as they struck, in time order (empty on a
    /// fault-free replay).
    pub failures: Vec<FailureEvent>,
    /// Request-conservation and capacity accounting
    /// (`completed + failed == offered` always holds; on a fault-free
    /// replay every loss counter is zero and
    /// `attempts == offered == completed`).
    pub availability: AvailabilityStats,
    /// Measured per-window serving metrics over the merged timeline.
    /// At least one entry per control window; completions landing
    /// past the horizon (the drain tail) extend the axis, so this may
    /// be longer than [`ElasticFleetReport::windows`].
    pub windowed: Vec<WindowMetrics>,
    /// Burn-rate alert transitions the controller's rule emitted over
    /// the measured window axis, in window order.
    pub alerts: Vec<AlertEvent>,
    /// The control horizon (last window end), seconds.
    pub horizon_s: f64,
    /// Total billed replica-seconds — the frontier's cost axis.
    pub replica_seconds: f64,
    /// Most replicas ever live at once.
    pub peak_replicas: usize,
}

impl ElasticFleetReport {
    /// Fraction of all *offered* requests meeting the configured SLO
    /// (measured, not estimated). Requests that failed outright —
    /// exhausted retries after replica kills — count against the
    /// denominator (a dropped request certainly missed its SLO), so
    /// on a fault-free replay this equals the fleet timeline's plain
    /// attainment. 0.0 when nothing was offered.
    pub fn attainment(&self) -> f64 {
        let denom = self.fleet.timeline.len() + self.availability.failed;
        if denom == 0 {
            return 0.0;
        }
        let met = self
            .fleet
            .timeline
            .iter()
            .filter(|t| self.config.slo.met_by(t))
            .count();
        met as f64 / denom as f64
    }

    /// SLO-meeting requests per second over the fleet makespan.
    pub fn goodput_rps(&self) -> f64 {
        self.fleet.goodput_rps(self.config.slo)
    }

    /// Time-averaged replica count over the horizon.
    pub fn mean_replicas(&self) -> f64 {
        if self.horizon_s > 0.0 {
            self.replica_seconds / self.horizon_s
        } else {
            0.0
        }
    }
}

/// One live replica's controller-side state during the replay.
struct ReplicaState {
    engine: Box<dyn OnlineEngine>,
    rates: ServiceRates,
    spawn_s: f64,
    ready_s: f64,
    retire_s: Option<f64>,
    killed_s: Option<f64>,
    stream: Vec<Request>,
    /// `(original request index, attempt number, calibrated work)`
    /// per stream entry, kept only when live routing meets fault
    /// injection: it resolves which *measured*-in-flight attempts a
    /// kill loses.
    stream_meta: Vec<(usize, u32, f64)>,
    /// Memoized causal replay of the assigned stream (see
    /// [`seesaw_engine::stepper`]), kept only under live routing;
    /// invalidated whenever the stream grows.
    live_cache: Option<EngineReport>,
}

impl ReplicaState {
    fn live(&self) -> bool {
        self.retire_s.is_none() && self.killed_s.is_none()
    }

    /// Measured replica state at `t`, from the exact causal replay of
    /// everything assigned so far (engines admit on arrival times, so
    /// the prefix replay *is* the live trajectory). Memoized between
    /// assignments: a replica that received nothing re-simulates
    /// nothing.
    fn live_state_at(&mut self, t: f64) -> LiveState {
        if self.live_cache.is_none() {
            self.live_cache = Some(self.engine.run_ready(&self.stream, self.ready_s));
        }
        live_state(self.live_cache.as_ref().expect("cache just filled"), t)
    }
}

/// Capacity-calibrated mirror of one replica's FIFO queue, kept only
/// while faults are being injected: it resolves *which* dispatched
/// attempts are still estimated in flight (and therefore lost) when
/// the replica is killed. Entries are
/// `(est done, est service, attempt id, original request index,
/// attempt number)`.
#[derive(Debug, Default)]
struct CalQueue {
    busy_until: f64,
    inflight: VecDeque<(f64, f64, u64, usize, u32)>,
}

/// The autoscaling controller: a [`ScalingPolicy`] bound to an
/// [`AutoscaleConfig`], ready to replay traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleController {
    /// Shared controller knobs.
    pub config: AutoscaleConfig,
    /// The replica-count policy.
    pub policy: ScalingPolicy,
    /// How window TTFT summaries are computed: [`SummaryMode::Exact`]
    /// (the default — byte-identical to pre-sketch behaviour) sorts
    /// each window's samples post-hoc; [`SummaryMode::Sketch`] folds
    /// completions into a streaming [`WindowAccumulator`] of
    /// mergeable quantile sketches as replica reports land.
    pub summary: SummaryMode,
    /// The burn-rate alert rule evaluated over the measured window
    /// axis ([`ElasticFleetReport::alerts`]).
    pub alert: AlertRule,
}

impl AutoscaleController {
    /// A controller; panics on invalid configuration or policy (use
    /// [`AutoscaleConfig::validate`] / [`ScalingPolicy::validate`]
    /// for recoverable checks). Summaries default to
    /// [`SummaryMode::Exact`] and alerting to [`AlertRule::default`];
    /// override with [`AutoscaleController::with_summary`] /
    /// [`AutoscaleController::with_alert`].
    pub fn new(config: AutoscaleConfig, policy: ScalingPolicy) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid autoscale config: {e}"));
        policy.validate().unwrap_or_else(|e| panic!("invalid scaling policy: {e}"));
        AutoscaleController {
            config,
            policy,
            summary: SummaryMode::Exact,
            alert: AlertRule::default(),
        }
    }

    /// The same controller with `summary` as its window-summary mode.
    pub fn with_summary(mut self, summary: SummaryMode) -> Self {
        self.summary = summary;
        self
    }

    /// The same controller evaluating `alert`; panics on an invalid
    /// rule.
    pub fn with_alert(mut self, alert: AlertRule) -> Self {
        alert.validate().unwrap_or_else(|e| panic!("invalid alert rule: {e}"));
        self.alert = alert;
        self
    }

    /// Replay `requests` (sorted by arrival) on replicas built by
    /// `build`, parallelizing the final engine simulations on the
    /// environment's runner.
    pub fn run(&self, build: ReplicaBuilder, requests: &[Request]) -> ElasticFleetReport {
        self.run_with(&SweepRunner::from_env(), build, requests)
    }

    /// [`AutoscaleController::run`] on an explicit runner. The
    /// decision trajectory is computed serially (it is causal:
    /// window N+1's routing depends on window N's scaling), so the
    /// runner only parallelizes the per-replica engine simulations —
    /// output is byte-identical for every `--jobs` value.
    pub fn run_with(
        &self,
        runner: &SweepRunner,
        build: ReplicaBuilder,
        requests: &[Request],
    ) -> ElasticFleetReport {
        self.run_faulted_with(runner, build, requests, &FaultSchedule::none())
    }

    /// [`AutoscaleController::run_with`] under a [`FaultSchedule`]:
    /// scheduled kills strike mid-replay, their in-flight and queued
    /// attempts are lost and requeued through the router after the
    /// detection delay (under the schedule's retry policy), and —
    /// when the schedule asks for it — the controller spawns
    /// replacement replicas that pay the usual warm-up.
    ///
    /// This is the *only* replay loop: the fault-free path is the
    /// same code with an empty schedule, so
    /// `run_faulted_with(.., &FaultSchedule::none())` is structurally
    /// identical to [`AutoscaleController::run_with`] — byte-for-byte,
    /// not merely equivalent. Faults and requeue decisions are
    /// resolved serially on the causal trajectory (like every routing
    /// and scaling decision), so output remains byte-identical for
    /// every `--jobs` value.
    pub fn run_faulted_with(
        &self,
        runner: &SweepRunner,
        build: ReplicaBuilder,
        requests: &[Request],
        faults: &FaultSchedule,
    ) -> ElasticFleetReport {
        self.run_faulted_instrumented_with(runner, build, requests, faults, &mut Instrument::off())
    }

    /// [`AutoscaleController::run_with`] collecting the wall-time
    /// phase profile beside the report — the `perf_report` entry
    /// point for answering "where does controller time go".
    pub fn run_profiled_with(
        &self,
        runner: &SweepRunner,
        build: ReplicaBuilder,
        requests: &[Request],
    ) -> (ElasticFleetReport, ControllerProfile) {
        let mut instr = Instrument::profiling();
        let report = self.run_faulted_instrumented_with(
            runner,
            build,
            requests,
            &FaultSchedule::none(),
            &mut instr,
        );
        (report, instr.profile)
    }

    /// [`AutoscaleController::run_faulted_with`] with a telemetry
    /// [`Instrument`]. When the recorder is enabled, the controller
    /// records its decision trajectory as it happens — scale events,
    /// kills, retries and parks on the controller track; route
    /// decisions (with the measured or estimated state each one saw)
    /// on the router track; one span per control window — and fills
    /// request lifecycle spans and registry metrics from the finished
    /// report. When `instr.profiling` is set, wall time is attributed
    /// across the controller phases (routing / live-state replay /
    /// engine runs / metrics) into `instr.profile`.
    ///
    /// With `Instrument::off()` this *is* `run_faulted_with`: every
    /// recording site is a branch on a false bool, so the disabled
    /// run's report is byte-identical (enforced by tests).
    pub fn run_faulted_instrumented_with(
        &self,
        runner: &SweepRunner,
        build: ReplicaBuilder,
        requests: &[Request],
        faults: &FaultSchedule,
        instr: &mut Instrument,
    ) -> ElasticFleetReport {
        let cfg = self.config;
        let telemetry = instr.telemetry_on();
        let prof = instr.profiling;
        let run_start = prof.then(Instant::now);
        // Replay accounting is deterministic (it follows the decision
        // trajectory), so the counters run unconditionally; only the
        // wall-clock timers are gated on `prof`.
        let mut replay_s = 0.0f64;
        let mut replays: u64 = 0;
        let mut replayed_requests: u64 = 0;
        faults
            .validate()
            .unwrap_or_else(|e| panic!("invalid fault schedule: {e}"));
        assert_arrivals_sorted(requests);
        let (avg_in, avg_out) = mean_lengths(requests);
        let spawn = |idx: usize, spawn_s: f64, ready_s: f64| -> ReplicaState {
            let engine = build(idx);
            let rates = engine.service_rates(avg_in, avg_out);
            ReplicaState {
                engine,
                rates,
                spawn_s,
                ready_s,
                retire_s: None,
                killed_s: None,
                stream: Vec::new(),
                stream_meta: Vec::new(),
                live_cache: None,
            }
        };

        let n0 = self.policy.initial_replicas(cfg.min_replicas, cfg.max_replicas);
        let mut replicas: Vec<ReplicaState> =
            (0..n0).map(|i| spawn(i, 0.0, 0.0)).collect();
        let mut router = Router::new(cfg.router, n0);
        let mut assignment = vec![0usize; requests.len()];
        if telemetry {
            instr.recorder.track(CONTROLLER_TRACK, "controller");
            instr.recorder.track(ROUTER_TRACK, &format!("router ({})", cfg.router));
            for (i, rep) in replicas.iter().enumerate() {
                instr
                    .recorder
                    .track(replica_track(i), &format!("replica{i} [{}]", rep.engine.label()));
            }
        }

        // Signal calibration: the roofline estimates are steady-state
        // optimistic, so scale them such that the mean request costs
        // exactly `1 / capacity_rps` seconds of replica time — the
        // *measured* cost. The router keeps the raw estimates (their
        // relative order is what routing needs, and it keeps Static
        // trajectories byte-identical to the fixed fleet tier).
        let mean_req = Request::new(u64::MAX, avg_in, avg_out);
        let calib = 1.0 / (cfg.capacity_rps * replicas[0].rates.est_service_s(&mean_req));

        let last_arrival = requests.last().map_or(0.0, |r| r.arrival_s);
        let base_windows = (last_arrival / cfg.window_s) as usize + 1;

        // Fault/retry bookkeeping. `injecting` gates every extra
        // per-dispatch cost, so the fault-free replay pays nothing
        // beyond an integer compare. Hash containers are lookup-only
        // (never iterated), so their order cannot leak into output.
        let injecting = !faults.events.is_empty();
        // Live routing: decisions read measured replica state (exact
        // causal replays) instead of the router's virtual queues, and
        // a kill's lost set is the *measured* in-flight attempts at
        // the kill instant rather than the `CalQueue` mirror.
        let live_routing = cfg.router.needs_live_state();
        let mut dispatch = DispatchQueue::new(requests);
        let mut next_fault = 0usize;
        let mut base_next = 0usize; // original index of the next base dispatch
        let mut retry_meta: HashMap<u64, (usize, u32)> = HashMap::new();
        // Attempt ids parked until a warming replica becomes ready
        // (dispatched while every replica was dark): re-dispatch is a
        // continuation of the same attempt, not a retry.
        let mut buffered: HashSet<u64> = HashSet::new();
        let mut doomed: HashSet<u64> = HashSet::new();
        let mut next_attempt_id = requests
            .iter()
            .map(|r| r.id)
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        let mut cal: Vec<CalQueue> = (0..n0).map(|_| CalQueue::default()).collect();
        let mut failures: Vec<FailureEvent> = Vec::new();
        let mut attempts = 0usize;
        let mut retries = 0usize;
        let mut lost_attempts = 0usize;
        let mut failed = 0usize;
        let mut replicas_killed = 0usize;
        // The replica count the policy last asked for — what
        // replacement spawns restore toward after kills.
        let mut desired = n0;
        // Requeue a lost attempt, or count the request failed when
        // its budget (attempts or deadline) is exhausted.
        let requeue_or_fail =
            |dispatch: &mut DispatchQueue,
             retry_meta: &mut HashMap<u64, (usize, u32)>,
             next_attempt_id: &mut u64,
             failed: &mut usize,
             lost_at_s: f64,
             orig_idx: usize,
             attempt: u32| {
                let next_attempt = attempt + 1;
                if next_attempt > faults.retry.max_attempts {
                    *failed += 1;
                    return;
                }
                let retry_at =
                    lost_at_s + faults.detect_s + faults.retry.backoff_s(next_attempt);
                let orig = &requests[orig_idx];
                if retry_at - orig.arrival_s > faults.retry.deadline_s {
                    *failed += 1;
                    return;
                }
                let id = *next_attempt_id;
                *next_attempt_id = next_attempt_id
                    .checked_add(1)
                    .expect("attempt ids exhausted");
                retry_meta.insert(id, (orig_idx, next_attempt));
                dispatch
                    .push(Request::new(id, orig.input_len, orig.output_len).with_arrival(retry_at));
            };

        let mut windows = Vec::with_capacity(base_windows);
        let mut events = Vec::new();
        let mut peak_replicas = n0;
        let mut windows_since_event = self.policy.cooldown_windows();
        let mut eligible: Vec<usize> = Vec::new();
        // Calibrated fluid backlog: outstanding replica-seconds of
        // work, drained at one second per accepting replica-second.
        let mut backlog_s = 0.0f64;
        let mut backlog_t = 0.0f64;

        // Windows extend past the base count while retries or faults
        // are still pending — the drain tail of a failure near the
        // trace end must still be replayed, not dropped.
        let mut w = 0usize;
        let loop_start = prof.then(Instant::now);
        while w < base_windows || !dispatch.is_empty() || next_fault < faults.events.len() {
            let t0 = w as f64 * cfg.window_s;
            let t1 = t0 + cfg.window_s;
            let mut arrivals = 0usize;
            let mut est_work_s = 0.0;
            let mut waits_ok = 0usize;
            let mut window_failures = 0usize;
            loop {
                let t_disp = dispatch.peek_s();
                let t_fault = faults.events.get(next_fault).map(|e| e.t_s);
                // A fault inside the window at or before the next
                // dispatch is processed first: the kill causally
                // precedes a dispatch at the same instant (a request
                // arriving exactly then already finds the replica
                // gone). With no faults this branch never runs and
                // the loop is exactly the fault-free walk.
                let fault_first = match (t_fault, t_disp) {
                    (Some(tf), Some(td)) => tf < t1 && tf <= td,
                    (Some(tf), None) => tf < t1,
                    _ => false,
                };
                if fault_first {
                    let event = faults.events[next_fault];
                    next_fault += 1;
                    let tk = event.t_s;
                    let candidates: Vec<usize> = replicas
                        .iter()
                        .enumerate()
                        .filter_map(|(i, r)| r.live().then_some(i))
                        .collect();
                    let (victims, group): (Vec<usize>, Option<usize>) = match event.kind {
                        FaultKind::KillReplica { pick } => {
                            if candidates.is_empty() {
                                (Vec::new(), None)
                            } else {
                                let v = candidates[(pick % candidates.len() as u64) as usize];
                                (vec![v], None)
                            }
                        }
                        FaultKind::GroupOutage { group } => (
                            candidates
                                .iter()
                                .copied()
                                .filter(|i| i % faults.groups == group)
                                .collect(),
                            Some(group),
                        ),
                    };
                    for v in victims {
                        replicas[v].killed_s = Some(tk);
                        replicas_killed += 1;
                        window_failures += 1;
                        router.reset_replica(v);
                        // Attempts done by the kill instant survived;
                        // everything else on the replica is lost and
                        // requeued (or failed). Estimated mode reads
                        // the `CalQueue` mirror; live mode reads the
                        // *measured* in-flight set — the kill fires as
                        // an event on the global clock, and what it
                        // loses is exactly what the replica's replay
                        // says is unfinished at that instant.
                        let lost: Vec<(f64, f64, u64, usize, u32)> = if live_routing {
                            let replay_start = prof.then(Instant::now);
                            let rep = &mut replicas[v];
                            if rep.live_cache.is_none() {
                                replays += 1;
                                replayed_requests += rep.stream.len() as u64;
                                rep.live_cache =
                                    Some(rep.engine.run_ready(&rep.stream, rep.ready_s));
                            }
                            let replay = rep.live_cache.as_ref().expect("cache just filled");
                            let completion: HashMap<u64, f64> = replay
                                .timeline
                                .iter()
                                .map(|t| (t.id, t.completion_s))
                                .collect();
                            let lost = rep
                                .stream
                                .iter()
                                .zip(&rep.stream_meta)
                                .filter_map(|(r, &(orig_idx, attempt, work))| {
                                    let done =
                                        completion.get(&r.id).copied().unwrap_or(f64::INFINITY);
                                    (done > tk).then_some((done, work, r.id, orig_idx, attempt))
                                })
                                .collect();
                            replay_s += lap(replay_start);
                            lost
                        } else {
                            let q = &mut cal[v];
                            while let Some(&(done, ..)) = q.inflight.front() {
                                if done > tk {
                                    break;
                                }
                                q.inflight.pop_front();
                            }
                            q.busy_until = tk;
                            q.inflight.drain(..).collect()
                        };
                        lost_attempts += lost.len();
                        failures.push(FailureEvent {
                            t_s: tk,
                            replica: v,
                            group,
                            lost_attempts: lost.len(),
                        });
                        if telemetry {
                            instr.recorder.instant(
                                CONTROLLER_TRACK,
                                &format!("kill r{v}"),
                                tk,
                                &[
                                    ("lost_attempts", lost.len().to_string()),
                                    ("group", group.map_or_else(|| "-".into(), |g| g.to_string())),
                                ],
                            );
                            instr.metrics.counter_add("autoscale.kills", 1);
                        }
                        for (done, service, attempt_id, orig_idx, attempt) in lost {
                            doomed.insert(attempt_id);
                            // The unserved remainder of the lost work
                            // leaves the fluid backlog; the retry
                            // re-adds its full cost when dispatched.
                            backlog_s = (backlog_s - service.min(done - tk)).max(0.0);
                            requeue_or_fail(
                                &mut dispatch,
                                &mut retry_meta,
                                &mut next_attempt_id,
                                &mut failed,
                                tk,
                                orig_idx,
                                attempt,
                            );
                        }
                    }
                    continue;
                }
                let Some(td) = t_disp else { break };
                if td >= t1 {
                    break;
                }
                let (req, is_retry) = dispatch.pop().expect("peeked a dispatch");
                // A buffered re-dispatch continues the same attempt —
                // it waited out an outage, it did not fail.
                let resumed = is_retry && buffered.remove(&req.id);
                let (orig_idx, attempt) = if is_retry {
                    if !resumed {
                        retries += 1;
                    }
                    *retry_meta.get(&req.id).expect("retry has metadata")
                } else {
                    base_next += 1;
                    (base_next - 1, 1)
                };
                if telemetry && is_retry && !resumed {
                    instr.recorder.instant(
                        CONTROLLER_TRACK,
                        &format!("retry req {}", requests[orig_idx].id),
                        req.arrival_s,
                        &[("attempt", attempt.to_string())],
                    );
                    instr.metrics.counter_add("autoscale.retry_dispatches", 1);
                }
                eligible.clear();
                eligible.extend(replicas.iter().enumerate().filter_map(|(i, rep)| {
                    (rep.live() && rep.ready_s <= req.arrival_s).then_some(i)
                }));
                if eligible.is_empty() {
                    // Only kills can empty the fleet (`min_replicas`
                    // guards the fault-free path).
                    assert!(
                        injecting,
                        "no accepting replica at t={} (min_replicas guards this)",
                        req.arrival_s
                    );
                    backlog_t = req.arrival_s;
                    // Park the arrival until the first warming replica
                    // becomes ready: the request waits out the outage
                    // instead of burning a retry attempt. With nothing
                    // warming (replacements only spawn at window
                    // boundaries) the attempt is lost at dispatch and
                    // requeued like killed work.
                    let resume = replicas
                        .iter()
                        .filter(|r| r.live())
                        .map(|r| r.ready_s)
                        .fold(f64::INFINITY, f64::min);
                    if resume.is_finite() {
                        debug_assert!(
                            resume > req.arrival_s,
                            "a ready live replica would have been eligible"
                        );
                        let id = next_attempt_id;
                        next_attempt_id =
                            next_attempt_id.checked_add(1).expect("attempt ids exhausted");
                        // Same attempt number: parking is not a retry.
                        retry_meta.insert(id, (orig_idx, attempt));
                        buffered.insert(id);
                        dispatch.push(
                            Request::new(id, req.input_len, req.output_len)
                                .with_arrival(resume),
                        );
                        if telemetry {
                            instr.recorder.instant(
                                CONTROLLER_TRACK,
                                &format!("park req {}", requests[orig_idx].id),
                                req.arrival_s,
                                &[("resume_s", fmt_secs(resume))],
                            );
                            instr.metrics.counter_add("autoscale.parked", 1);
                        }
                    } else {
                        arrivals += 1;
                        attempts += 1;
                        lost_attempts += 1;
                        if telemetry {
                            instr.recorder.instant(
                                CONTROLLER_TRACK,
                                &format!("lost-at-dispatch req {}", requests[orig_idx].id),
                                req.arrival_s,
                                &[],
                            );
                        }
                        requeue_or_fail(
                            &mut dispatch,
                            &mut retry_meta,
                            &mut next_attempt_id,
                            &mut failed,
                            req.arrival_s,
                            orig_idx,
                            attempt,
                        );
                    }
                    continue;
                }
                attempts += 1;
                backlog_s = (backlog_s
                    - (req.arrival_s - backlog_t) * eligible.len() as f64)
                    .max(0.0);
                backlog_t = req.arrival_s;
                // Measured state of each eligible replica at the
                // arrival instant (live policies only; estimated
                // policies ignore the vec and read their virtual
                // queues). Queried serially in eligible order, so the
                // trajectory stays deterministic and jobs-invariant.
                let live: Vec<(usize, f64)> = if live_routing {
                    let replay_start = prof.then(Instant::now);
                    let mut states = Vec::with_capacity(eligible.len());
                    for &i in &eligible {
                        if replicas[i].live_cache.is_none() {
                            replays += 1;
                            replayed_requests += replicas[i].stream.len() as u64;
                        }
                        let s = replicas[i].live_state_at(req.arrival_s);
                        states.push((s.queue_depth, s.work_s));
                    }
                    replay_s += lap(replay_start);
                    states
                } else {
                    Vec::new()
                };
                let routed = router
                    .route_live_among(&req, &eligible, &live, |i, r| {
                        replicas[i].rates.est_service_s(r)
                    })
                    .expect("eligible is non-empty");
                assignment[orig_idx] = routed.replica;
                if telemetry {
                    // The state this decision saw: measured for live
                    // policies, the router's virtual queue otherwise.
                    let (depth, work_s) = if live_routing {
                        let pos = eligible
                            .iter()
                            .position(|&i| i == routed.replica)
                            .expect("routed among eligible");
                        live[pos]
                    } else {
                        router.queue_state(req.arrival_s)[routed.replica]
                    };
                    instr.recorder.instant(
                        ROUTER_TRACK,
                        &format!("route {} -> r{}", req.id, routed.replica),
                        req.arrival_s,
                        &[
                            ("queue_depth", depth.to_string()),
                            ("work_s", fmt_secs(work_s)),
                            ("est_wait_s", fmt_secs(routed.est_wait_s)),
                            ("measured", live_routing.to_string()),
                        ],
                    );
                    instr
                        .metrics
                        .counter_add(&format!("autoscale.route.replica{}", routed.replica), 1);
                    instr.metrics.observe("autoscale.route.est_wait_s", routed.est_wait_s);
                }
                let work = calib * replicas[routed.replica].rates.est_service_s(&req);
                waits_ok +=
                    usize::from(backlog_s / eligible.len() as f64 <= cfg.slo.ttft_s);
                backlog_s += work;
                est_work_s += work;
                replicas[routed.replica].stream.push(req);
                if live_routing {
                    replicas[routed.replica].live_cache = None;
                    if injecting {
                        replicas[routed.replica].stream_meta.push((orig_idx, attempt, work));
                    }
                } else if injecting {
                    let q = &mut cal[routed.replica];
                    let now = req.arrival_s;
                    while let Some(&(done, ..)) = q.inflight.front() {
                        if done > now {
                            break;
                        }
                        q.inflight.pop_front();
                    }
                    let start = now.max(q.busy_until);
                    q.busy_until = start + work;
                    q.inflight.push_back((start + work, work, req.id, orig_idx, attempt));
                }
                arrivals += 1;
            }

            // Observe the boundary state.
            let queue_state = router.queue_state(t1);
            let ready = replicas
                .iter()
                .filter(|r| r.live() && r.ready_s <= t1)
                .count();
            let provisioned = replicas.iter().filter(|r| r.live()).count();
            backlog_s = (backlog_s - (t1 - backlog_t) * ready.max(1) as f64).max(0.0);
            backlog_t = t1;
            // Under live routing the controller observes the
            // *measured* queue: unfinished requests across accepting
            // replicas at the boundary, from their exact replays —
            // not the calibrated fluid estimate.
            let queue_depth = if live_routing {
                let replay_start = prof.then(Instant::now);
                let mut depth = 0usize;
                for rep in replicas.iter_mut().filter(|r| r.live() && r.ready_s <= t1) {
                    if rep.live_cache.is_none() {
                        replays += 1;
                        replayed_requests += rep.stream.len() as u64;
                    }
                    depth += rep.live_state_at(t1).queue_depth;
                }
                replay_s += lap(replay_start);
                depth as f64
            } else {
                backlog_s * cfg.capacity_rps
            };
            let signals = WindowSignals {
                t0,
                t1,
                arrivals,
                offered_rps: arrivals as f64 / cfg.window_s,
                queue_depth,
                est_attainment: if arrivals > 0 {
                    waits_ok as f64 / arrivals as f64
                } else {
                    1.0
                },
                utilization_est: est_work_s / (ready.max(1) as f64 * cfg.window_s),
                ready,
                provisioned,
                failures: window_failures,
            };

            // Decide (cooldown-gated), then act.
            let decision = if windows_since_event >= self.policy.cooldown_windows() {
                self.policy.decide(&signals, cfg.min_replicas, cfg.max_replicas)
            } else {
                ScaleDecision::Hold
            };
            match decision {
                ScaleDecision::Hold => windows_since_event += 1,
                ScaleDecision::Up(k) => {
                    for _ in 0..k {
                        let idx = router.add_replica();
                        debug_assert_eq!(idx, replicas.len());
                        replicas.push(spawn(idx, t1, t1 + cfg.warmup_s));
                        cal.push(CalQueue::default());
                        if telemetry {
                            let label = replicas[idx].engine.label();
                            instr
                                .recorder
                                .track(replica_track(idx), &format!("replica{idx} [{label}]"));
                        }
                    }
                    desired = provisioned + k;
                    events.push(ScaleEvent { t_s: t1, from: provisioned, to: provisioned + k });
                    peak_replicas = peak_replicas.max(provisioned + k);
                    windows_since_event = 0;
                    if telemetry {
                        instr.recorder.instant(
                            CONTROLLER_TRACK,
                            &format!("scale-up {provisioned} -> {}", provisioned + k),
                            t1,
                            &[
                                ("from", provisioned.to_string()),
                                ("to", (provisioned + k).to_string()),
                            ],
                        );
                        instr.metrics.counter_add("autoscale.scale_up", 1);
                    }
                }
                ScaleDecision::Down(k) => {
                    // Retire the emptiest accepting replicas (fastest
                    // drain); ties prefer the newest (LIFO), all
                    // deterministic.
                    let mut victims: Vec<usize> = replicas
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.live() && r.ready_s <= t1)
                        .map(|(i, _)| i)
                        .collect();
                    victims.sort_by(|&a, &b| {
                        let (qa, qb) = (queue_state[a], queue_state[b]);
                        qa.0.cmp(&qb.0)
                            .then(qa.1.total_cmp(&qb.1))
                            .then(b.cmp(&a))
                    });
                    for &v in victims.iter().take(k) {
                        replicas[v].retire_s = Some(t1);
                    }
                    desired = provisioned - k;
                    events.push(ScaleEvent { t_s: t1, from: provisioned, to: provisioned - k });
                    windows_since_event = 0;
                    if telemetry {
                        instr.recorder.instant(
                            CONTROLLER_TRACK,
                            &format!("scale-down {provisioned} -> {}", provisioned - k),
                            t1,
                            &[
                                ("from", provisioned.to_string()),
                                ("to", (provisioned - k).to_string()),
                            ],
                        );
                        instr.metrics.counter_add("autoscale.scale_down", 1);
                    }
                }
            }
            // Replacement spawns: restore the policy's desired count
            // after kills shrank the live fleet. Recorded as a scale
            // event but does NOT reset the cooldown — replacing lost
            // capacity is repair, not a policy decision.
            if faults.replace_failures {
                let live_now = replicas.iter().filter(|r| r.live()).count();
                let want = desired.clamp(cfg.min_replicas, cfg.max_replicas);
                if live_now < want {
                    for _ in 0..(want - live_now) {
                        let idx = router.add_replica();
                        debug_assert_eq!(idx, replicas.len());
                        replicas.push(spawn(idx, t1, t1 + cfg.warmup_s));
                        cal.push(CalQueue::default());
                        if telemetry {
                            let label = replicas[idx].engine.label();
                            instr
                                .recorder
                                .track(replica_track(idx), &format!("replica{idx} [{label}]"));
                        }
                    }
                    events.push(ScaleEvent { t_s: t1, from: live_now, to: want });
                    peak_replicas = peak_replicas.max(want);
                    if telemetry {
                        instr.recorder.instant(
                            CONTROLLER_TRACK,
                            &format!("replace {live_now} -> {want}"),
                            t1,
                            &[("from", live_now.to_string()), ("to", want.to_string())],
                        );
                        instr.metrics.counter_add("autoscale.replacements", 1);
                    }
                }
            }
            if telemetry {
                instr.recorder.span(
                    CONTROLLER_TRACK,
                    &format!("window {w}"),
                    t0,
                    cfg.window_s,
                    &[
                        ("arrivals", signals.arrivals.to_string()),
                        ("offered_rps", fmt_secs(signals.offered_rps)),
                        ("queue_depth", fmt_secs(signals.queue_depth)),
                        ("est_attainment", fmt_secs(signals.est_attainment)),
                        ("utilization_est", fmt_secs(signals.utilization_est)),
                        ("ready", signals.ready.to_string()),
                        ("provisioned", signals.provisioned.to_string()),
                        ("failures", signals.failures.to_string()),
                    ],
                );
                let peak = instr
                    .metrics
                    .gauge("autoscale.window.queue_depth.max")
                    .unwrap_or(0.0)
                    .max(signals.queue_depth);
                instr.metrics.gauge_set("autoscale.window.queue_depth.max", peak);
                instr.metrics.observe("autoscale.window.offered_rps", signals.offered_rps);
            }
            windows.push(signals);
            w += 1;
        }
        let loop_s = lap(loop_start);
        // With no faults the loop runs exactly `base_windows` times,
        // so this equals the fault-free horizon.
        let horizon_s = windows.len() as f64 * cfg.window_s;

        // The trajectory is fixed; run the real simulations.
        let engine_start = prof.then(Instant::now);
        let indices: Vec<usize> = (0..replicas.len()).collect();
        let mut reports = runner.map(&indices, |&i| {
            replicas[i].engine.run_ready(&replicas[i].stream, replicas[i].ready_s)
        });
        let engine_s = lap(engine_start);
        let metrics_start = prof.then(Instant::now);
        if injecting {
            // Drop attempts the fault schedule declared lost, and fold
            // surviving retries back onto their original request: the
            // timeline's identity and arrival are the *first* attempt's
            // (so e2e spans detection + backoff + requeue), while the
            // simulated completion is the surviving attempt's.
            for report in &mut reports {
                report.timeline.retain(|t| !doomed.contains(&t.id));
                for t in &mut report.timeline {
                    if let Some(&(orig_idx, attempt)) = retry_meta.get(&t.id) {
                        t.id = requests[orig_idx].id;
                        t.arrival_s = requests[orig_idx].arrival_s;
                        t.attempts = attempt;
                    }
                }
                report.timeline.sort_by_key(|t| t.id);
                report.latency = LatencyStats::from_timeline(&report.timeline);
            }
        }
        let lifecycles: Vec<ReplicaLifecycle> = replicas
            .iter()
            .zip(&reports)
            .map(|(rep, report)| {
                let last_completion = report
                    .timeline
                    .iter()
                    .map(|t| t.completion_s)
                    .fold(rep.ready_s, f64::max);
                let end_s = match (rep.killed_s, rep.retire_s) {
                    // A kill is instantaneous: nothing drains past
                    // it, and billing stops at the kill.
                    (Some(killed), _) => killed,
                    (None, Some(retire)) => retire.max(last_completion),
                    (None, None) => horizon_s.max(last_completion),
                };
                ReplicaLifecycle {
                    spawn_s: rep.spawn_s,
                    ready_s: rep.ready_s,
                    retire_s: rep.retire_s,
                    killed_s: rep.killed_s,
                    end_s,
                    requests: rep.stream.len(),
                }
            })
            .collect();
        let replica_seconds: f64 = lifecycles.iter().map(ReplicaLifecycle::billed_s).sum();
        // In sketch mode the window axis is built *streamingly*: each
        // replica report's completions fold into the accumulator as
        // they land — no post-hoc sort of the merged timeline. The
        // accumulator is push-order-invariant (property-tested
        // against the oracle), so the result stays byte-identical for
        // every `--jobs` value. Exact mode keeps the original
        // post-hoc path untouched.
        let mut acc = (self.summary == SummaryMode::Sketch)
            .then(|| WindowAccumulator::new(cfg.slo, cfg.window_s, SummaryMode::Sketch));
        if let Some(acc) = acc.as_mut() {
            for report in &reports {
                acc.observe(&report.timeline);
            }
        }
        let fleet = FleetReport::from_replica_reports(cfg.router, reports, assignment);
        let windowed = match acc {
            Some(acc) => acc.finish(horizon_s),
            None => windowed_metrics(&fleet.timeline, cfg.slo, cfg.window_s, horizon_s),
        };
        let alerts = AlertEngine::evaluate(&[self.alert], &windowed);
        // Conservation: every offered request either completed or was
        // counted failed — nothing is silently dropped.
        let completed = fleet.timeline.len();
        assert_eq!(
            completed + failed,
            requests.len(),
            "request conservation: every offered request must complete or be counted failed"
        );
        debug_assert_eq!(attempts, completed + lost_attempts);
        let availability = AvailabilityStats {
            offered: requests.len(),
            attempts,
            completed,
            lost_attempts,
            retries,
            failed,
            replicas_killed,
            unavailability_s: unavailability_s(&lifecycles, horizon_s),
            window_capacity_s: accepting_capacity_per_window(
                &lifecycles,
                cfg.window_s,
                windows.len(),
            ),
        };
        let metrics_s = lap(metrics_start);
        if telemetry {
            record_request_spans(&mut instr.recorder, &fleet);
            for a in &alerts {
                let name = match a.kind {
                    AlertKind::Fire => "alert.fire",
                    AlertKind::Clear => "alert.clear",
                };
                instr.recorder.instant(
                    ALERT_TRACK,
                    name,
                    a.t_s,
                    &[
                        ("rule", a.rule.clone()),
                        ("window", a.window.to_string()),
                        ("short_burn", format!("{:.2}", a.short_burn)),
                        ("long_burn", format!("{:.2}", a.long_burn)),
                    ],
                );
            }
            instr.metrics.counter_add(
                "autoscale.alerts.fired",
                alerts.iter().filter(|a| a.kind == AlertKind::Fire).count() as u64,
            );
            for (i, rep) in fleet.replicas.iter().enumerate() {
                instr.metrics.counter_add(
                    &format!("autoscale.requests.replica{i}"),
                    rep.stats.requests as u64,
                );
            }
            instr.metrics.counter_add("autoscale.windows", windows.len() as u64);
            instr.metrics.counter_add("autoscale.attempts", attempts as u64);
            instr.metrics.counter_add("autoscale.retries", retries as u64);
            instr.metrics.counter_add("autoscale.lost_attempts", lost_attempts as u64);
            instr.metrics.counter_add("autoscale.failed", failed as u64);
            instr.metrics.counter_add("autoscale.replicas_killed", replicas_killed as u64);
            instr.metrics.counter_add("autoscale.scale_events", events.len() as u64);
            instr.metrics.counter_add("autoscale.replay.count", replays);
            instr.metrics.counter_add("autoscale.replay.requests", replayed_requests);
            instr.metrics.gauge_set("autoscale.peak_replicas", peak_replicas as f64);
            instr
                .metrics
                .gauge_set("autoscale.unavailability_s", availability.unavailability_s);
        }
        if prof {
            instr.profile.absorb(&ControllerProfile {
                routing_s: (loop_s - replay_s).max(0.0),
                replay_s,
                engine_s,
                metrics_s,
                total_s: lap(run_start),
                windows: windows.len(),
                dispatches: attempts as u64,
                replays,
                replayed_requests,
            });
        }
        ElasticFleetReport {
            policy: self.policy,
            config: cfg,
            fleet,
            windows,
            events,
            lifecycles,
            failures,
            availability,
            windowed,
            alerts,
            horizon_s,
            replica_seconds,
            peak_replicas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, RetryPolicy};
    use seesaw_engine::vllm::VllmEngine;
    use seesaw_engine::SchedulingPolicy;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::{presets, ModelConfig};
    use seesaw_parallel::ParallelConfig;
    use seesaw_workload::{ArrivalDist, WorkloadGen};
    use std::sync::Arc;

    fn builder() -> impl Fn(usize) -> Box<dyn OnlineEngine> + Sync {
        let cluster = Arc::new(ClusterSpec::a10x4());
        let model: Arc<ModelConfig> = Arc::new(presets::llama2_13b());
        move |_| {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&cluster),
                    Arc::clone(&model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            )
        }
    }

    fn cfg(window_s: f64, warmup_s: f64, max: usize) -> AutoscaleConfig {
        AutoscaleConfig {
            window_s,
            warmup_s,
            min_replicas: 1,
            max_replicas: max,
            router: RouterPolicy::JoinShortestQueue,
            slo: SloSpec { ttft_s: 15.0, tpot_s: 0.05 },
            // Roughly the measured offline capacity of the test
            // scenario (vLLM T2P2, constant 512/32 requests).
            capacity_rps: 2.5,
        }
    }

    fn traced(n: usize, rate: f64, seed: u64) -> Vec<Request> {
        let base = WorkloadGen::constant(512, 32).generate(n);
        ArrivalDist::Poisson { rate }
            .attach(&base, seed)
            .expect("valid arrivals")
    }

    #[test]
    fn static_policy_never_scales_and_serves_everything() {
        let build = builder();
        let reqs = traced(40, 2.0, 7);
        let ctl = AutoscaleController::new(cfg(10.0, 30.0, 8), ScalingPolicy::Static { n: 3 });
        let report = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
        assert!(report.events.is_empty());
        assert_eq!(report.lifecycles.len(), 3);
        assert_eq!(report.peak_replicas, 3);
        assert_eq!(report.fleet.stats.requests, 40);
        assert_eq!(report.fleet.timeline.len(), 40);
        assert!(report.lifecycles.iter().all(|l| l.ready_s == 0.0));
        // Cost covers at least 3 replicas x horizon.
        assert!(report.replica_seconds >= 3.0 * report.horizon_s - 1e-9);
        assert!(report.windowed.len() >= report.windows.len());
    }

    #[test]
    fn overload_triggers_scale_up_and_new_replicas_pay_warmup() {
        let build = builder();
        // Sustained overload for one replica (capacity ~0.6 rps on
        // this workload): the reactive policy must grow the fleet.
        let reqs = traced(120, 4.0, 3);
        let ctl =
            AutoscaleController::new(cfg(5.0, 8.0, 6), ScalingPolicy::reactive_default());
        let report = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
        assert!(
            report.events.iter().any(|e| e.to > e.from),
            "overload must scale up: {:?}",
            report.events
        );
        assert!(report.peak_replicas > 1);
        // Every non-initial replica pays the warm-up delay and never
        // serves a request before it is ready.
        for (lc, rep) in report.lifecycles.iter().zip(&report.fleet.replicas).skip(1) {
            assert!((lc.ready_s - lc.spawn_s - 8.0).abs() < 1e-9);
            for t in &rep.timeline {
                assert!(
                    t.first_token_s >= lc.ready_s,
                    "replica served at {} before ready at {}",
                    t.first_token_s,
                    lc.ready_s
                );
            }
        }
        // All requests still served exactly once.
        assert_eq!(report.fleet.timeline.len(), 120);
    }

    #[test]
    fn quiet_tail_scales_down_and_retired_replicas_drain() {
        let build = builder();
        // A burst then silence: the controller must shed replicas.
        let mut reqs = traced(60, 6.0, 5);
        let burst_end = reqs.last().unwrap().arrival_s;
        // Sparse trickle long after the burst keeps windows coming.
        for i in 0..6 {
            let id = 1000 + i as u64;
            reqs.push(
                Request::new(id, 512, 32).with_arrival(burst_end + 30.0 + 20.0 * i as f64),
            );
        }
        let ctl =
            AutoscaleController::new(cfg(5.0, 5.0, 6), ScalingPolicy::reactive_default());
        let report = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
        let downs: Vec<&ScaleEvent> =
            report.events.iter().filter(|e| e.to < e.from).collect();
        assert!(!downs.is_empty(), "quiet tail must scale down: {:?}", report.events);
        // Retired replicas billed through their drain, and their
        // streams stay within their accepting interval.
        for lc in report.lifecycles.iter().filter(|l| l.retire_s.is_some()) {
            assert!(lc.end_s >= lc.retire_s.unwrap());
            assert!(lc.billed_s() >= 0.0);
        }
        // Retired replicas received nothing after their retire time.
        for (lc, rep) in report.lifecycles.iter().zip(&report.fleet.replicas) {
            if let Some(retire) = lc.retire_s {
                for t in &rep.timeline {
                    assert!(t.arrival_s < retire, "routed to a retiring replica");
                }
            }
        }
        assert_eq!(report.fleet.timeline.len(), reqs.len());
    }

    #[test]
    fn report_is_runner_invariant() {
        let build = builder();
        let reqs = traced(80, 3.0, 11);
        for policy in [
            ScalingPolicy::Static { n: 2 },
            ScalingPolicy::reactive_default(),
            ScalingPolicy::target_utilization_default(),
        ] {
            let ctl = AutoscaleController::new(cfg(5.0, 6.0, 6), policy);
            let serial = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
            let parallel = ctl.run_with(&SweepRunner::new(4), &build, &reqs);
            assert_eq!(serial, parallel, "{policy}");
        }
    }

    #[test]
    fn sketch_mode_keeps_exact_counters_and_stays_jobs_invariant() {
        let build = builder();
        let reqs = traced(120, 4.0, 3);
        let ctl =
            AutoscaleController::new(cfg(5.0, 8.0, 6), ScalingPolicy::reactive_default());
        let exact = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
        // Exact is the default: `with_summary(Exact)` is a no-op, and
        // the whole report — not just the window axis — is
        // byte-identical to the plain run.
        assert_eq!(
            exact,
            ctl.with_summary(SummaryMode::Exact)
                .run_with(&SweepRunner::serial(), &build, &reqs)
        );
        let sketch = ctl
            .with_summary(SummaryMode::Sketch)
            .run_with(&SweepRunner::serial(), &build, &reqs);
        // Everything outside the window axis is untouched by the
        // summary mode...
        assert_eq!(sketch.fleet, exact.fleet);
        assert_eq!(sketch.windows, exact.windows);
        assert_eq!(sketch.events, exact.events);
        assert_eq!(sketch.availability, exact.availability);
        // ...and alerting (driven by the exact counters) transitions
        // identically in both modes.
        assert_eq!(sketch.alerts, exact.alerts);
        // The window axis keeps exact counters; only the TTFT summary
        // is sketched, within its 1% bound.
        assert_eq!(sketch.windowed.len(), exact.windowed.len());
        for (s, e) in sketch.windowed.iter().zip(&exact.windowed) {
            assert_eq!(s.arrivals, e.arrivals);
            assert_eq!(s.completions, e.completions);
            assert_eq!(s.attainment, e.attainment);
            assert_eq!(s.goodput_rps, e.goodput_rps);
            assert_eq!(s.ttft.is_some(), e.ttft.is_some());
            if let (Some(sk), Some(ex)) = (s.ttft, e.ttft) {
                for (a, b) in [(sk.p50, ex.p50), (sk.p90, ex.p90), (sk.max, ex.max)] {
                    assert!((a - b).abs() <= (b.abs() * 0.01).max(1e-9));
                }
            }
        }
        // The streaming fold consumes per-replica reports, but its
        // output is push-order-invariant: byte-identical across
        // `--jobs`.
        assert_eq!(
            sketch,
            ctl.with_summary(SummaryMode::Sketch)
                .run_with(&SweepRunner::new(4), &build, &reqs)
        );
    }

    #[test]
    fn empty_trace_yields_one_quiet_window() {
        let build = builder();
        let ctl = AutoscaleController::new(cfg(10.0, 5.0, 4), ScalingPolicy::reactive_default());
        let report = ctl.run_with(&SweepRunner::serial(), &build, &[]);
        assert_eq!(report.windows.len(), 1);
        assert_eq!(report.fleet.stats.requests, 0);
        assert_eq!(report.peak_replicas, 1);
        assert!(report.fleet.latency.is_none());
        assert_eq!(report.windows[0].est_attainment, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid autoscale config")]
    fn bad_config_rejected() {
        AutoscaleController::new(
            AutoscaleConfig { window_s: 0.0, ..AutoscaleConfig::default() },
            ScalingPolicy::reactive_default(),
        );
    }

    /// One kill event at `t_s` (victim chosen by `pick` over the live
    /// set), with replacement spawns on or off.
    fn kill_at(t_s: f64, pick: u64, replace: bool) -> FaultSchedule {
        FaultSchedule {
            events: vec![FaultEvent { t_s, kind: FaultKind::KillReplica { pick } }],
            groups: 1,
            detect_s: 2.0,
            retry: RetryPolicy::default(),
            replace_failures: replace,
        }
    }

    #[test]
    fn empty_fault_schedule_reproduces_the_plain_run() {
        let build = builder();
        let reqs = traced(60, 3.0, 9);
        for policy in [ScalingPolicy::Static { n: 2 }, ScalingPolicy::reactive_default()] {
            let ctl = AutoscaleController::new(cfg(5.0, 6.0, 6), policy);
            let plain = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
            let faulted = ctl.run_faulted_with(
                &SweepRunner::serial(),
                &build,
                &reqs,
                &FaultSchedule::none(),
            );
            assert_eq!(plain, faulted, "{policy}");
            assert_eq!(plain.availability.offered, 60);
            assert_eq!(plain.availability.attempts, 60);
            assert_eq!(plain.availability.failed, 0);
            assert_eq!(plain.availability.retries, 0);
            assert!((plain.availability.retry_amplification() - 1.0).abs() < 1e-12);
            assert!(plain.fleet.timeline.iter().all(|t| t.attempts == 1));
        }
    }

    #[test]
    fn kill_requeues_lost_work_and_conserves_requests() {
        let build = builder();
        let reqs = traced(80, 3.0, 13);
        let ctl = AutoscaleController::new(cfg(5.0, 4.0, 6), ScalingPolicy::Static { n: 2 });
        let report =
            ctl.run_faulted_with(&SweepRunner::serial(), &build, &reqs, &kill_at(8.0, 1, true));
        let a = &report.availability;
        assert_eq!(a.replicas_killed, 1);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].group.is_none());
        assert!((report.failures[0].t_s - 8.0).abs() < 1e-12);
        // Conservation: nothing silently dropped.
        assert_eq!(a.completed + a.failed, a.offered);
        assert_eq!(a.attempts, a.completed + a.lost_attempts);
        assert!(a.lost_attempts > 0, "an 8s-in kill must catch in-flight work");
        assert!(a.retries > 0);
        assert!(a.retry_amplification() > 1.0);
        // The killed replica's lifecycle stops at the kill.
        let killed: Vec<&ReplicaLifecycle> =
            report.lifecycles.iter().filter(|l| l.killed_s.is_some()).collect();
        assert_eq!(killed.len(), 1);
        assert!((killed[0].end_s - 8.0).abs() < 1e-12);
        // Surviving retries fold back onto the original request: the
        // timeline keeps first arrivals and counts the attempts.
        assert!(report.fleet.timeline.iter().any(|t| t.attempts > 1));
        let ids: Vec<u64> = report.fleet.timeline.iter().map(|t| t.id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids unique and sorted");
        // Replacement restored the static fleet: more lifecycles than
        // the initial provision, and the window signals saw the kill.
        assert!(report.lifecycles.len() > 2);
        assert!(report.windows.iter().map(|w| w.failures).sum::<usize>() == 1);
    }

    #[test]
    fn replacement_recovers_a_full_outage_and_a_bare_fleet_does_not() {
        let build = builder();
        let reqs = traced(60, 2.0, 17);
        let outage = |replace: bool| FaultSchedule {
            events: vec![FaultEvent { t_s: 10.0, kind: FaultKind::GroupOutage { group: 0 } }],
            groups: 1, // one group == everyone: the whole fleet dies
            detect_s: 2.0,
            retry: RetryPolicy::default(),
            replace_failures: replace,
        };
        let ctl = AutoscaleController::new(cfg(5.0, 4.0, 6), ScalingPolicy::Static { n: 2 });
        let repaired =
            ctl.run_faulted_with(&SweepRunner::serial(), &build, &reqs, &outage(true));
        let bare = ctl.run_faulted_with(&SweepRunner::serial(), &build, &reqs, &outage(false));
        // Without replacement the fleet stays dark: every request
        // after the outage exhausts its retries and fails, and the
        // fleet accrues unavailability. With replacement, spawns
        // restore service after warm-up and most requests complete.
        assert_eq!(bare.availability.completed + bare.availability.failed, 60);
        assert!(bare.availability.failed > 0, "a dead fleet must fail requests");
        assert!(bare.availability.unavailability_s > 0.0);
        assert_eq!(repaired.availability.completed + repaired.availability.failed, 60);
        assert!(
            repaired.availability.completed > bare.availability.completed,
            "replacement must recover requests: {} vs {}",
            repaired.availability.completed,
            bare.availability.completed
        );
        assert!(repaired.attainment() > bare.attainment());
        assert_eq!(repaired.availability.replicas_killed, 2);
        assert_eq!(repaired.failures.len(), 2);
        assert!(repaired.failures.iter().all(|f| f.group == Some(0)));
        // Per-window accepting capacity dips to zero during the
        // outage, then recovers only in the repaired run.
        let cap = &repaired.availability.window_capacity_s;
        assert_eq!(cap.len(), repaired.windows.len());
        assert!(cap.iter().any(|&c| c == 0.0), "outage must zero a window: {cap:?}");
        assert!(cap.iter().rev().any(|&c| c > 0.0));
    }

    #[test]
    fn faulted_report_is_runner_invariant() {
        let build = builder();
        let reqs = traced(70, 3.0, 19);
        for policy in [ScalingPolicy::Static { n: 2 }, ScalingPolicy::reactive_default()] {
            let ctl = AutoscaleController::new(cfg(5.0, 5.0, 6), policy);
            let faults = kill_at(6.0, 0, true);
            let serial = ctl.run_faulted_with(&SweepRunner::serial(), &build, &reqs, &faults);
            let parallel = ctl.run_faulted_with(&SweepRunner::new(4), &build, &reqs, &faults);
            assert_eq!(serial, parallel, "{policy}");
        }
    }

    /// Live routing drives the controller from measured state: the
    /// run completes every request, stays runner-invariant, and the
    /// boundary queue-depth signal is the measured unfinished count
    /// (integral, unlike the fluid estimate).
    #[test]
    fn live_routing_serves_and_observes_measured_depth() {
        let build = builder();
        let reqs = traced(40, 3.0, 21);
        for router in [RouterPolicy::JoinShortestQueueLive, RouterPolicy::LeastWorkLive] {
            let config = AutoscaleConfig { router, ..cfg(5.0, 4.0, 6) };
            let ctl = AutoscaleController::new(config, ScalingPolicy::Static { n: 2 });
            let serial = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
            let parallel = ctl.run_with(&SweepRunner::new(4), &build, &reqs);
            assert_eq!(serial, parallel, "{router} diverged across job counts");
            assert_eq!(serial.fleet.timeline.len(), 40, "{router}");
            assert_eq!(serial.availability.failed, 0, "{router}");
            // Measured depth is a count of requests: integral, and
            // positive somewhere under 3 rps against ~2.5 rps of
            // fleet capacity.
            assert!(
                serial.windows.iter().all(|w| w.queue_depth.fract() == 0.0),
                "{router}: measured depth must be integral"
            );
            assert!(
                serial.windows.iter().any(|w| w.queue_depth > 0.0),
                "{router}: backlog must be visible somewhere"
            );
        }
    }

    /// A kill under live routing loses exactly the measured in-flight
    /// set; conservation and fold-back hold as in estimated mode, and
    /// the run stays runner-invariant.
    #[test]
    fn live_routing_kill_conserves_requests() {
        let build = builder();
        let reqs = traced(60, 3.0, 23);
        let config =
            AutoscaleConfig { router: RouterPolicy::JoinShortestQueueLive, ..cfg(5.0, 4.0, 6) };
        let ctl = AutoscaleController::new(config, ScalingPolicy::Static { n: 2 });
        let faults = kill_at(8.0, 1, true);
        let report = ctl.run_faulted_with(&SweepRunner::serial(), &build, &reqs, &faults);
        let a = &report.availability;
        assert_eq!(a.replicas_killed, 1);
        assert_eq!(a.completed + a.failed, a.offered);
        assert_eq!(a.attempts, a.completed + a.lost_attempts);
        assert!(a.lost_attempts > 0, "an 8s-in kill must catch measured in-flight work");
        let parallel = ctl.run_faulted_with(&SweepRunner::new(4), &build, &reqs, &faults);
        assert_eq!(report, parallel);
    }

    /// During a full outage with replacement, arrivals park until the
    /// replacement warms instead of burning retry attempts: the
    /// parked requests complete with `attempts == 1`.
    #[test]
    fn dark_fleet_arrivals_buffer_until_a_replica_warms() {
        let build = builder();
        let reqs = traced(40, 2.0, 25);
        let outage = FaultSchedule {
            events: vec![FaultEvent { t_s: 6.0, kind: FaultKind::GroupOutage { group: 0 } }],
            groups: 1,
            detect_s: 2.0,
            retry: RetryPolicy::default(),
            replace_failures: true,
        };
        let ctl = AutoscaleController::new(cfg(5.0, 4.0, 6), ScalingPolicy::Static { n: 2 });
        let report = ctl.run_faulted_with(&SweepRunner::serial(), &build, &reqs, &outage);
        let a = &report.availability;
        assert_eq!(a.completed + a.failed, a.offered);
        // The replacement spawns at the t=10 boundary and warms by
        // t=14; arrivals in the dark stretch after the spawn park and
        // then complete as first attempts (served late, not retried).
        let parked_and_served = report
            .fleet
            .timeline
            .iter()
            .filter(|t| t.attempts == 1 && t.arrival_s > 10.0 && t.first_token_s >= 14.0)
            .count();
        assert!(
            parked_and_served > 0,
            "arrivals during the warm-up stretch must park, then complete untried"
        );
    }

    #[test]
    fn ratio_paths_stay_finite_on_empty_and_degenerate_runs() {
        let build = builder();
        let ctl = AutoscaleController::new(cfg(10.0, 5.0, 4), ScalingPolicy::reactive_default());
        let report = ctl.run_with(&SweepRunner::serial(), &build, &[]);
        assert_eq!(report.attainment(), 0.0);
        assert_eq!(report.goodput_rps(), 0.0);
        assert!(report.mean_replicas().is_finite());
        assert!((report.availability.retry_amplification() - 1.0).abs() < 1e-12);
        assert!(report.availability.unavailability_s == 0.0);
        // A synthetic zero-horizon report cannot divide by zero.
        let mut degenerate = report.clone();
        degenerate.horizon_s = 0.0;
        degenerate.replica_seconds = 0.0;
        assert_eq!(degenerate.mean_replicas(), 0.0);
        assert!(degenerate.attainment().is_finite());
    }

    /// Telemetry never perturbs the trajectory: an instrumented run's
    /// report equals the plain run's, its recorded bytes are
    /// `--jobs`-invariant, and `Instrument::off()` records nothing.
    #[test]
    fn instrumented_run_records_and_stays_jobs_invariant() {
        let build = builder();
        let reqs = traced(60, 3.0, 27);
        let faults = kill_at(8.0, 1, true);
        for router in [RouterPolicy::JoinShortestQueue, RouterPolicy::JoinShortestQueueLive] {
            let config = AutoscaleConfig { router, ..cfg(5.0, 4.0, 6) };
            let ctl = AutoscaleController::new(config, ScalingPolicy::reactive_default());
            let plain = ctl.run_faulted_with(&SweepRunner::serial(), &build, &reqs, &faults);

            let mut off = seesaw_telemetry::Instrument::off();
            let quiet = ctl.run_faulted_instrumented_with(
                &SweepRunner::serial(),
                &build,
                &reqs,
                &faults,
                &mut off,
            );
            assert_eq!(plain, quiet, "{router}: off instrument must not perturb the run");
            assert!(off.recorder.spans().is_empty() && off.recorder.instants().is_empty());
            assert!(off.metrics.is_empty());

            let run = |jobs: Option<usize>| {
                let runner = jobs.map_or_else(SweepRunner::serial, SweepRunner::new);
                let mut instr = seesaw_telemetry::Instrument::tracing();
                let report =
                    ctl.run_faulted_instrumented_with(&runner, &build, &reqs, &faults, &mut instr);
                let trace = seesaw_telemetry::perfetto::render(&instr.recorder, "autoscale");
                (report, trace, instr.metrics.render_json())
            };
            let (r1, t1, m1) = run(None);
            let (r4, t4, m4) = run(Some(4));
            assert_eq!(r1, plain, "{router}: telemetry must not perturb the run");
            assert_eq!(r1, r4, "{router}");
            assert_eq!(t1, t4, "{router}: trace bytes must be jobs-invariant");
            assert_eq!(m1, m4, "{router}: metric bytes must be jobs-invariant");
            assert!(t1.contains("\"kill r"), "{router}: kill marker recorded");
            assert!(t1.contains("window 0"), "{router}: window spans recorded");
            assert!(t1.contains("route "), "{router}: route instants recorded");
            assert!(t1.contains("req "), "{router}: request spans recorded");
        }
    }

    /// The wall-time profile attributes most of the controller's run
    /// and counts replays only where live routing replays.
    #[test]
    fn profile_attributes_controller_time() {
        let build = builder();
        let reqs = traced(60, 3.0, 29);
        let config =
            AutoscaleConfig { router: RouterPolicy::JoinShortestQueueLive, ..cfg(5.0, 4.0, 6) };
        let ctl = AutoscaleController::new(config, ScalingPolicy::Static { n: 2 });
        let (report, profile) = ctl.run_profiled_with(&SweepRunner::serial(), &build, &reqs);
        assert_eq!(report, ctl.run_with(&SweepRunner::serial(), &build, &reqs));
        assert_eq!(profile.windows, report.windows.len());
        assert_eq!(profile.dispatches, 60);
        assert!(profile.replays > 0, "live routing must replay");
        assert!(profile.replayed_requests >= profile.replays);
        assert!(profile.total_s > 0.0);
        assert!(profile.replay_s > 0.0);
        assert!(profile.engine_s > 0.0);
        assert!(
            profile.coverage() > 0.8,
            "phases must explain the run: {:.1}% of {:.4}s",
            100.0 * profile.coverage(),
            profile.total_s
        );

        // Estimated routing never replays; the counters stay zero.
        let est = AutoscaleController::new(cfg(5.0, 4.0, 6), ScalingPolicy::Static { n: 2 });
        let (_, p2) = est.run_profiled_with(&SweepRunner::serial(), &build, &reqs);
        assert_eq!(p2.replays, 0);
        assert_eq!(p2.replayed_requests, 0);
        assert_eq!(p2.replay_s, 0.0);
    }
}
