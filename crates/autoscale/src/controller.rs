//! The autoscaling controller: replay a long arrival trace through a
//! time-sliced elastic fleet, growing and shrinking the replica count
//! online.
//!
//! Time advances in fixed control windows. Within a window the
//! controller routes each arrival over the replicas *currently
//! accepting traffic* (warm, not retiring) using the fleet tier's
//! resumable [`Router`]; at the window boundary it reads the cheap
//! observable signals — queue depth, offered load, estimated
//! utilization, estimated TTFT attainment — and lets the
//! [`ScalingPolicy`] propose an action, subject to its cooldown:
//!
//! * **Scale up** spawns replicas that pay a warm-up delay
//!   (weight-load time) before accepting traffic; routing flows
//!   around them until they are ready, so warm-up manifests as
//!   *delayed capacity* — the still-warming replica leaves the rest
//!   of the fleet congested, which the measured TTFT/attainment pick
//!   up. Dispatch goes through
//!   [`seesaw_engine::OnlineEngine::run_ready`], whose ready-time
//!   clamp is the engine-level guard of the same contract (a no-op
//!   here because the router never hands a warming replica traffic,
//!   but load-bearing for streams assembled without the router).
//! * **Scale down** marks replicas as retiring: they stop receiving
//!   new requests and *drain* their in-flight work before
//!   disappearing — the replica's billed lifetime extends to its last
//!   completion.
//!
//! Routing decisions use only a-priori state (virtual queues and
//! roofline service estimates), so the whole decision trajectory is
//! deterministic and independent of the [`SweepRunner`]; the real
//! engine simulations run once per replica after the trajectory is
//! fixed, in parallel, and merge into an ordinary [`FleetReport`]
//! judged by measured (not estimated) latency. A [`ScalingPolicy::Static`]
//! trajectory never scales, which makes the elastic run collapse
//! exactly — byte-for-byte — onto the fixed [`seesaw_fleet::Fleet`]
//! of the same size.

use crate::policy::{ScaleDecision, ScalingPolicy};
use seesaw_engine::driver::assert_arrivals_sorted;
use seesaw_engine::online::mean_lengths;
use seesaw_engine::{OnlineEngine, ServiceRates, SweepRunner};
use seesaw_fleet::sweep::ReplicaBuilder;
use seesaw_fleet::{FleetReport, Router, RouterPolicy};
use seesaw_workload::{windowed_metrics, Request, SloSpec, WindowMetrics};
use serde::{Deserialize, Serialize};

/// Controller configuration shared by every policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Control-window length, seconds: signals are observed and
    /// decisions taken at these boundaries.
    pub window_s: f64,
    /// Warm-up (weight-load) delay a freshly spawned replica pays
    /// before it accepts traffic, seconds. Replicas provisioned at
    /// t = 0 start warm.
    pub warmup_s: f64,
    /// Fewest replicas the fleet may shrink to (≥ 1).
    pub min_replicas: usize,
    /// Most replicas the fleet may grow to.
    pub max_replicas: usize,
    /// Request-routing policy inside the fleet.
    pub router: RouterPolicy,
    /// The SLO decisions are proxied against and measurements judged
    /// by.
    pub slo: SloSpec,
    /// Measured single-replica offline capacity, requests/second —
    /// the calibration every signal is computed against (see
    /// [`seesaw_fleet::offline_capacity`]). The roofline service
    /// estimates the router ranks replicas with are steady-state
    /// token rates and run several-fold optimistic against the
    /// simulated engines; routing only needs their *relative* order,
    /// but utilization/backlog signals need absolute scale, exactly
    /// like a production autoscaler is calibrated against measured
    /// backend throughput.
    pub capacity_rps: f64,
}

impl AutoscaleConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.window_s.is_finite() && self.window_s > 0.0) {
            return Err(format!(
                "control window must be finite and > 0, got {}",
                self.window_s
            ));
        }
        if !(self.warmup_s.is_finite() && self.warmup_s >= 0.0) {
            return Err(format!(
                "warm-up delay must be finite and >= 0, got {}",
                self.warmup_s
            ));
        }
        if self.min_replicas == 0 {
            return Err("min_replicas must be at least 1".into());
        }
        if self.max_replicas < self.min_replicas {
            return Err(format!(
                "max_replicas {} must be >= min_replicas {}",
                self.max_replicas, self.min_replicas
            ));
        }
        if !(self.capacity_rps.is_finite() && self.capacity_rps > 0.0) {
            return Err(format!(
                "calibration capacity must be finite and > 0, got {}",
                self.capacity_rps
            ));
        }
        Ok(())
    }
}

impl Default for AutoscaleConfig {
    /// The `autoscale` bin's defaults: 5-minute control windows,
    /// 60-second weight-load warm-up, 1–16 replicas,
    /// join-shortest-queue routing, and the serving harness's SLO.
    fn default() -> Self {
        AutoscaleConfig {
            window_s: 300.0,
            warmup_s: 60.0,
            min_replicas: 1,
            max_replicas: 16,
            router: RouterPolicy::JoinShortestQueue,
            slo: SloSpec { ttft_s: 15.0, tpot_s: 0.05 },
            capacity_rps: 1.0,
        }
    }
}

/// The signals a policy sees at one window boundary — all a-priori
/// (router virtual-queue) state, the kind a production autoscaler
/// actually has before any request finishes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSignals {
    /// Window start, seconds (inclusive).
    pub t0: f64,
    /// Window end, seconds (exclusive) — the decision instant.
    pub t1: f64,
    /// Requests that arrived in the window.
    pub arrivals: usize,
    /// Offered load over the window, requests/second.
    pub offered_rps: f64,
    /// Estimated outstanding requests at the window end, from the
    /// capacity-calibrated fluid backlog (work not yet served,
    /// expressed in mean-request units; near 0 whenever the fleet
    /// keeps up, growing when offered load exceeds capacity).
    pub queue_depth: f64,
    /// Fraction of the window's arrivals whose *estimated* queue wait
    /// (fluid backlog over accepting replicas at the arrival instant)
    /// met the TTFT SLO (1.0 when nothing arrived).
    pub est_attainment: f64,
    /// Estimated utilization: capacity-calibrated offered
    /// service-seconds in the window per accepting replica-second.
    pub utilization_est: f64,
    /// Replicas accepting traffic at the window end.
    pub ready: usize,
    /// Live replicas at the window end (accepting + warming, not
    /// retiring).
    pub provisioned: usize,
}

/// One scale event in the decision log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// When the decision was taken (a window boundary), seconds.
    pub t_s: f64,
    /// Live replicas before the event.
    pub from: usize,
    /// Live replicas after the event.
    pub to: usize,
}

/// One replica's lifetime, as billed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicaLifecycle {
    /// When the replica was provisioned, seconds.
    pub spawn_s: f64,
    /// When it began accepting traffic (spawn + warm-up; 0 for the
    /// initial fleet), seconds.
    pub ready_s: f64,
    /// When it was told to retire (`None` = lived to the horizon),
    /// seconds.
    pub retire_s: Option<f64>,
    /// When it actually disappeared: after draining in-flight work
    /// (measured last completion), or the horizon for survivors.
    pub end_s: f64,
    /// Requests it served.
    pub requests: usize,
}

impl ReplicaLifecycle {
    /// Billed lifetime, seconds.
    pub fn billed_s(&self) -> f64 {
        self.end_s - self.spawn_s
    }
}

/// Outcome of one elastic-fleet trace replay: the merged fleet view
/// plus the control trajectory and the cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticFleetReport {
    /// The scaling policy that drove the trajectory.
    pub policy: ScalingPolicy,
    /// Controller configuration.
    pub config: AutoscaleConfig,
    /// Merged fleet run (every replica that ever existed, in spawn
    /// order; the assignment maps requests to those indices).
    pub fleet: FleetReport,
    /// Per-window signals, in window order.
    pub windows: Vec<WindowSignals>,
    /// Scale events, in time order.
    pub events: Vec<ScaleEvent>,
    /// Per-replica lifetimes, in spawn order.
    pub lifecycles: Vec<ReplicaLifecycle>,
    /// Measured per-window serving metrics over the merged timeline.
    /// At least one entry per control window; completions landing
    /// past the horizon (the drain tail) extend the axis, so this may
    /// be longer than [`ElasticFleetReport::windows`].
    pub windowed: Vec<WindowMetrics>,
    /// The control horizon (last window end), seconds.
    pub horizon_s: f64,
    /// Total billed replica-seconds — the frontier's cost axis.
    pub replica_seconds: f64,
    /// Most replicas ever live at once.
    pub peak_replicas: usize,
}

impl ElasticFleetReport {
    /// Fraction of all requests meeting the configured SLO
    /// (measured, not estimated).
    pub fn attainment(&self) -> f64 {
        self.fleet.slo_attainment(self.config.slo)
    }

    /// SLO-meeting requests per second over the fleet makespan.
    pub fn goodput_rps(&self) -> f64 {
        self.fleet.goodput_rps(self.config.slo)
    }

    /// Time-averaged replica count over the horizon.
    pub fn mean_replicas(&self) -> f64 {
        if self.horizon_s > 0.0 {
            self.replica_seconds / self.horizon_s
        } else {
            0.0
        }
    }
}

/// One live replica's controller-side state during the replay.
struct ReplicaState {
    engine: Box<dyn OnlineEngine>,
    rates: ServiceRates,
    spawn_s: f64,
    ready_s: f64,
    retire_s: Option<f64>,
    stream: Vec<Request>,
}

impl ReplicaState {
    fn live(&self) -> bool {
        self.retire_s.is_none()
    }
}

/// The autoscaling controller: a [`ScalingPolicy`] bound to an
/// [`AutoscaleConfig`], ready to replay traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleController {
    /// Shared controller knobs.
    pub config: AutoscaleConfig,
    /// The replica-count policy.
    pub policy: ScalingPolicy,
}

impl AutoscaleController {
    /// A controller; panics on invalid configuration or policy (use
    /// [`AutoscaleConfig::validate`] / [`ScalingPolicy::validate`]
    /// for recoverable checks).
    pub fn new(config: AutoscaleConfig, policy: ScalingPolicy) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid autoscale config: {e}"));
        policy.validate().unwrap_or_else(|e| panic!("invalid scaling policy: {e}"));
        AutoscaleController { config, policy }
    }

    /// Replay `requests` (sorted by arrival) on replicas built by
    /// `build`, parallelizing the final engine simulations on the
    /// environment's runner.
    pub fn run(&self, build: ReplicaBuilder, requests: &[Request]) -> ElasticFleetReport {
        self.run_with(&SweepRunner::from_env(), build, requests)
    }

    /// [`AutoscaleController::run`] on an explicit runner. The
    /// decision trajectory is computed serially (it is causal:
    /// window N+1's routing depends on window N's scaling), so the
    /// runner only parallelizes the per-replica engine simulations —
    /// output is byte-identical for every `--jobs` value.
    pub fn run_with(
        &self,
        runner: &SweepRunner,
        build: ReplicaBuilder,
        requests: &[Request],
    ) -> ElasticFleetReport {
        let cfg = self.config;
        assert_arrivals_sorted(requests);
        let (avg_in, avg_out) = mean_lengths(requests);
        let spawn = |idx: usize, spawn_s: f64, ready_s: f64| -> ReplicaState {
            let engine = build(idx);
            let rates = engine.service_rates(avg_in, avg_out);
            ReplicaState { engine, rates, spawn_s, ready_s, retire_s: None, stream: Vec::new() }
        };

        let n0 = self.policy.initial_replicas(cfg.min_replicas, cfg.max_replicas);
        let mut replicas: Vec<ReplicaState> =
            (0..n0).map(|i| spawn(i, 0.0, 0.0)).collect();
        let mut router = Router::new(cfg.router, n0);
        let mut assignment = vec![0usize; requests.len()];

        // Signal calibration: the roofline estimates are steady-state
        // optimistic, so scale them such that the mean request costs
        // exactly `1 / capacity_rps` seconds of replica time — the
        // *measured* cost. The router keeps the raw estimates (their
        // relative order is what routing needs, and it keeps Static
        // trajectories byte-identical to the fixed fleet tier).
        let mean_req = Request::new(u64::MAX, avg_in, avg_out);
        let calib = 1.0 / (cfg.capacity_rps * replicas[0].rates.est_service_s(&mean_req));

        let last_arrival = requests.last().map_or(0.0, |r| r.arrival_s);
        let n_windows = (last_arrival / cfg.window_s) as usize + 1;
        let horizon_s = n_windows as f64 * cfg.window_s;

        let mut windows = Vec::with_capacity(n_windows);
        let mut events = Vec::new();
        let mut peak_replicas = n0;
        let mut windows_since_event = self.policy.cooldown_windows();
        let mut eligible: Vec<usize> = Vec::new();
        let mut next = 0usize; // index of the first unrouted request
        // Calibrated fluid backlog: outstanding replica-seconds of
        // work, drained at one second per accepting replica-second.
        let mut backlog_s = 0.0f64;
        let mut backlog_t = 0.0f64;

        for w in 0..n_windows {
            let t0 = w as f64 * cfg.window_s;
            let t1 = t0 + cfg.window_s;
            let mut arrivals = 0usize;
            let mut est_work_s = 0.0;
            let mut waits_ok = 0usize;
            while next < requests.len() && requests[next].arrival_s < t1 {
                let req = &requests[next];
                eligible.clear();
                eligible.extend(replicas.iter().enumerate().filter_map(|(i, rep)| {
                    (rep.live() && rep.ready_s <= req.arrival_s).then_some(i)
                }));
                assert!(
                    !eligible.is_empty(),
                    "no accepting replica at t={} (min_replicas guards this)",
                    req.arrival_s
                );
                backlog_s = (backlog_s
                    - (req.arrival_s - backlog_t) * eligible.len() as f64)
                    .max(0.0);
                backlog_t = req.arrival_s;
                let routed = router.route_among(req, &eligible, |i, r| {
                    replicas[i].rates.est_service_s(r)
                });
                assignment[next] = routed.replica;
                let work = calib * replicas[routed.replica].rates.est_service_s(req);
                waits_ok +=
                    usize::from(backlog_s / eligible.len() as f64 <= cfg.slo.ttft_s);
                backlog_s += work;
                est_work_s += work;
                replicas[routed.replica].stream.push(*req);
                arrivals += 1;
                next += 1;
            }

            // Observe the boundary state.
            let queue_state = router.queue_state(t1);
            let ready = replicas
                .iter()
                .filter(|r| r.live() && r.ready_s <= t1)
                .count();
            let provisioned = replicas.iter().filter(|r| r.live()).count();
            backlog_s = (backlog_s - (t1 - backlog_t) * ready.max(1) as f64).max(0.0);
            backlog_t = t1;
            let signals = WindowSignals {
                t0,
                t1,
                arrivals,
                offered_rps: arrivals as f64 / cfg.window_s,
                queue_depth: backlog_s * cfg.capacity_rps,
                est_attainment: if arrivals > 0 {
                    waits_ok as f64 / arrivals as f64
                } else {
                    1.0
                },
                utilization_est: est_work_s / (ready.max(1) as f64 * cfg.window_s),
                ready,
                provisioned,
            };

            // Decide (cooldown-gated), then act.
            let decision = if windows_since_event >= self.policy.cooldown_windows() {
                self.policy.decide(&signals, cfg.min_replicas, cfg.max_replicas)
            } else {
                ScaleDecision::Hold
            };
            match decision {
                ScaleDecision::Hold => windows_since_event += 1,
                ScaleDecision::Up(k) => {
                    for _ in 0..k {
                        let idx = router.add_replica();
                        debug_assert_eq!(idx, replicas.len());
                        replicas.push(spawn(idx, t1, t1 + cfg.warmup_s));
                    }
                    events.push(ScaleEvent { t_s: t1, from: provisioned, to: provisioned + k });
                    peak_replicas = peak_replicas.max(provisioned + k);
                    windows_since_event = 0;
                }
                ScaleDecision::Down(k) => {
                    // Retire the emptiest accepting replicas (fastest
                    // drain); ties prefer the newest (LIFO), all
                    // deterministic.
                    let mut victims: Vec<usize> = replicas
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.live() && r.ready_s <= t1)
                        .map(|(i, _)| i)
                        .collect();
                    victims.sort_by(|&a, &b| {
                        let (qa, qb) = (queue_state[a], queue_state[b]);
                        qa.0.cmp(&qb.0)
                            .then(qa.1.total_cmp(&qb.1))
                            .then(b.cmp(&a))
                    });
                    for &v in victims.iter().take(k) {
                        replicas[v].retire_s = Some(t1);
                    }
                    events.push(ScaleEvent { t_s: t1, from: provisioned, to: provisioned - k });
                    windows_since_event = 0;
                }
            }
            windows.push(signals);
        }

        // The trajectory is fixed; run the real simulations.
        let indices: Vec<usize> = (0..replicas.len()).collect();
        let reports = runner.map(&indices, |&i| {
            replicas[i].engine.run_ready(&replicas[i].stream, replicas[i].ready_s)
        });
        let lifecycles: Vec<ReplicaLifecycle> = replicas
            .iter()
            .zip(&reports)
            .map(|(rep, report)| {
                let last_completion = report
                    .timeline
                    .iter()
                    .map(|t| t.completion_s)
                    .fold(rep.ready_s, f64::max);
                let end_s = match rep.retire_s {
                    Some(retire) => retire.max(last_completion),
                    None => horizon_s.max(last_completion),
                };
                ReplicaLifecycle {
                    spawn_s: rep.spawn_s,
                    ready_s: rep.ready_s,
                    retire_s: rep.retire_s,
                    end_s,
                    requests: rep.stream.len(),
                }
            })
            .collect();
        let replica_seconds: f64 = lifecycles.iter().map(ReplicaLifecycle::billed_s).sum();
        let fleet = FleetReport::from_replica_reports(cfg.router, reports, assignment);
        let windowed = windowed_metrics(&fleet.timeline, cfg.slo, cfg.window_s, horizon_s);
        ElasticFleetReport {
            policy: self.policy,
            config: cfg,
            fleet,
            windows,
            events,
            lifecycles,
            windowed,
            horizon_s,
            replica_seconds,
            peak_replicas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_engine::vllm::VllmEngine;
    use seesaw_engine::SchedulingPolicy;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::{presets, ModelConfig};
    use seesaw_parallel::ParallelConfig;
    use seesaw_workload::{ArrivalDist, WorkloadGen};
    use std::sync::Arc;

    fn builder() -> impl Fn(usize) -> Box<dyn OnlineEngine> + Sync {
        let cluster = Arc::new(ClusterSpec::a10x4());
        let model: Arc<ModelConfig> = Arc::new(presets::llama2_13b());
        move |_| {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&cluster),
                    Arc::clone(&model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            )
        }
    }

    fn cfg(window_s: f64, warmup_s: f64, max: usize) -> AutoscaleConfig {
        AutoscaleConfig {
            window_s,
            warmup_s,
            min_replicas: 1,
            max_replicas: max,
            router: RouterPolicy::JoinShortestQueue,
            slo: SloSpec { ttft_s: 15.0, tpot_s: 0.05 },
            // Roughly the measured offline capacity of the test
            // scenario (vLLM T2P2, constant 512/32 requests).
            capacity_rps: 2.5,
        }
    }

    fn traced(n: usize, rate: f64, seed: u64) -> Vec<Request> {
        let base = WorkloadGen::constant(512, 32).generate(n);
        ArrivalDist::Poisson { rate }
            .attach(&base, seed)
            .expect("valid arrivals")
    }

    #[test]
    fn static_policy_never_scales_and_serves_everything() {
        let build = builder();
        let reqs = traced(40, 2.0, 7);
        let ctl = AutoscaleController::new(cfg(10.0, 30.0, 8), ScalingPolicy::Static { n: 3 });
        let report = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
        assert!(report.events.is_empty());
        assert_eq!(report.lifecycles.len(), 3);
        assert_eq!(report.peak_replicas, 3);
        assert_eq!(report.fleet.stats.requests, 40);
        assert_eq!(report.fleet.timeline.len(), 40);
        assert!(report.lifecycles.iter().all(|l| l.ready_s == 0.0));
        // Cost covers at least 3 replicas x horizon.
        assert!(report.replica_seconds >= 3.0 * report.horizon_s - 1e-9);
        assert!(report.windowed.len() >= report.windows.len());
    }

    #[test]
    fn overload_triggers_scale_up_and_new_replicas_pay_warmup() {
        let build = builder();
        // Sustained overload for one replica (capacity ~0.6 rps on
        // this workload): the reactive policy must grow the fleet.
        let reqs = traced(120, 4.0, 3);
        let ctl =
            AutoscaleController::new(cfg(5.0, 8.0, 6), ScalingPolicy::reactive_default());
        let report = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
        assert!(
            report.events.iter().any(|e| e.to > e.from),
            "overload must scale up: {:?}",
            report.events
        );
        assert!(report.peak_replicas > 1);
        // Every non-initial replica pays the warm-up delay and never
        // serves a request before it is ready.
        for (lc, rep) in report.lifecycles.iter().zip(&report.fleet.replicas).skip(1) {
            assert!((lc.ready_s - lc.spawn_s - 8.0).abs() < 1e-9);
            for t in &rep.timeline {
                assert!(
                    t.first_token_s >= lc.ready_s,
                    "replica served at {} before ready at {}",
                    t.first_token_s,
                    lc.ready_s
                );
            }
        }
        // All requests still served exactly once.
        assert_eq!(report.fleet.timeline.len(), 120);
    }

    #[test]
    fn quiet_tail_scales_down_and_retired_replicas_drain() {
        let build = builder();
        // A burst then silence: the controller must shed replicas.
        let mut reqs = traced(60, 6.0, 5);
        let burst_end = reqs.last().unwrap().arrival_s;
        // Sparse trickle long after the burst keeps windows coming.
        for i in 0..6 {
            let id = 1000 + i as u64;
            reqs.push(
                Request::new(id, 512, 32).with_arrival(burst_end + 30.0 + 20.0 * i as f64),
            );
        }
        let ctl =
            AutoscaleController::new(cfg(5.0, 5.0, 6), ScalingPolicy::reactive_default());
        let report = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
        let downs: Vec<&ScaleEvent> =
            report.events.iter().filter(|e| e.to < e.from).collect();
        assert!(!downs.is_empty(), "quiet tail must scale down: {:?}", report.events);
        // Retired replicas billed through their drain, and their
        // streams stay within their accepting interval.
        for lc in report.lifecycles.iter().filter(|l| l.retire_s.is_some()) {
            assert!(lc.end_s >= lc.retire_s.unwrap());
            assert!(lc.billed_s() >= 0.0);
        }
        // Retired replicas received nothing after their retire time.
        for (lc, rep) in report.lifecycles.iter().zip(&report.fleet.replicas) {
            if let Some(retire) = lc.retire_s {
                for t in &rep.timeline {
                    assert!(t.arrival_s < retire, "routed to a retiring replica");
                }
            }
        }
        assert_eq!(report.fleet.timeline.len(), reqs.len());
    }

    #[test]
    fn report_is_runner_invariant() {
        let build = builder();
        let reqs = traced(80, 3.0, 11);
        for policy in [
            ScalingPolicy::Static { n: 2 },
            ScalingPolicy::reactive_default(),
            ScalingPolicy::target_utilization_default(),
        ] {
            let ctl = AutoscaleController::new(cfg(5.0, 6.0, 6), policy);
            let serial = ctl.run_with(&SweepRunner::serial(), &build, &reqs);
            let parallel = ctl.run_with(&SweepRunner::new(4), &build, &reqs);
            assert_eq!(serial, parallel, "{policy}");
        }
    }

    #[test]
    fn empty_trace_yields_one_quiet_window() {
        let build = builder();
        let ctl = AutoscaleController::new(cfg(10.0, 5.0, 4), ScalingPolicy::reactive_default());
        let report = ctl.run_with(&SweepRunner::serial(), &build, &[]);
        assert_eq!(report.windows.len(), 1);
        assert_eq!(report.fleet.stats.requests, 0);
        assert_eq!(report.peak_replicas, 1);
        assert!(report.fleet.latency.is_none());
        assert_eq!(report.windows[0].est_attainment, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid autoscale config")]
    fn bad_config_rejected() {
        AutoscaleController::new(
            AutoscaleConfig { window_s: 0.0, ..AutoscaleConfig::default() },
            ScalingPolicy::reactive_default(),
        );
    }
}
