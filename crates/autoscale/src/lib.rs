//! Autoscaling controller tier: trace-driven elastic fleets.
//!
//! PR 4's `crates/fleet` answered "how does a *fixed* fleet of N
//! replicas behave under load?"; this crate answers the elastic
//! question a capacity planner actually asks: **how many replicas do
//! you need over a day, and what does each scaling policy cost in
//! SLO attainment?** It is the next level of the first-principles
//! "model the infrastructure, then sweep the policy space"
//! methodology — one tier above the fleet, two above the engine:
//!
//! * [`AutoscaleController`] replays a day-scale arrival trace (see
//!   [`seesaw_workload::RateEnvelope`] for diurnal/bimodal trace
//!   generation) through a time-sliced elastic fleet: per control
//!   window it routes arrivals over the currently-accepting replicas
//!   on the fleet tier's resumable router, observes a-priori signals
//!   (queue depth, offered load, estimated utilization/attainment),
//!   and lets a [`ScalingPolicy`] grow or shrink the fleet — new
//!   replicas pay a warm-up (weight-load) delay before accepting
//!   traffic, retiring replicas drain their in-flight work before
//!   disappearing and are billed through the drain.
//! * [`ScalingPolicy`] is pluggable: a [`ScalingPolicy::Static`]
//!   baseline (provision-for-peak / provision-for-mean),
//!   [`ScalingPolicy::ReactiveThreshold`] (queue-depth/attainment
//!   bounds with hysteresis and cooldown), and
//!   [`ScalingPolicy::TargetUtilization`] (the classic
//!   utilization-tracking autoscaler).
//! * [`sweep::frontier_sweep_with`] runs policy × trace grids and
//!   tabulates billed replica-seconds against measured SLO
//!   attainment — the cost-vs-SLO frontier (the `autoscale` bin).
//! * [`faults`] adds failure injection on top: a [`FaultSchedule`]
//!   kills replicas (or whole groups) mid-trace, lost attempts are
//!   requeued under a [`RetryPolicy`], replacement spawns restore the
//!   desired count, and [`AvailabilityStats`] accounts for every
//!   offered request. `run_with` is literally
//!   `run_faulted_with(.., FaultSchedule::none())`, so the fault-free
//!   path is byte-identical by construction (the `chaos` crate builds
//!   seeded schedules and sweeps the availability frontier).
//!
//! Everything is deterministic and runner-invariant: the decision
//! trajectory is causal and serial; only the final per-replica engine
//! simulations parallelize. A Static trajectory reproduces the fixed
//! [`seesaw_fleet::Fleet`] of the same size byte-for-byte, so the
//! elastic tier nests the static one exactly.

pub mod alert;
pub mod controller;
pub mod faults;
pub mod policy;
pub mod sweep;

pub use alert::{score_detection, AlertEngine, AlertEvent, AlertKind, AlertRule, DetectionScore};
pub use controller::{
    AutoscaleConfig, AutoscaleController, ElasticFleetReport, ReplicaLifecycle, ScaleEvent,
    WindowSignals,
};
pub use faults::{
    AvailabilityStats, FailureEvent, FaultEvent, FaultKind, FaultSchedule, RetryPolicy,
};
pub use policy::{ScaleDecision, ScalingPolicy};
pub use sweep::{frontier_sweep_with, FrontierPoint, FrontierSweep};
