//! Autoscaling-tier invariants: the elastic controller nests the
//! static fleet tier exactly (a Static trajectory is byte-identical
//! to the fixed `Fleet` of the same size), decisions are
//! deterministic and runner-invariant for arbitrary traces, warm-up
//! only ever delays capacity, and cooldown bounds the decision rate
//! on step loads.

use proptest::prelude::*;
use seesaw_autoscale::{
    AutoscaleConfig, AutoscaleController, ScaleEvent, ScalingPolicy,
};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{OnlineEngine, SchedulingPolicy, SweepRunner};
use seesaw_fleet::{Fleet, RouterPolicy};
use seesaw_hw::ClusterSpec;
use seesaw_model::{presets, ModelConfig};
use seesaw_parallel::ParallelConfig;
use seesaw_workload::{ArrivalDist, Request, SloSpec, WorkloadGen};
use std::sync::Arc;

fn specs() -> (Arc<ClusterSpec>, Arc<ModelConfig>) {
    (Arc::new(ClusterSpec::a10x4()), Arc::new(presets::llama2_13b()))
}

fn vllm_engine(cluster: &Arc<ClusterSpec>, model: &Arc<ModelConfig>) -> VllmEngine {
    VllmEngine::new(
        Arc::clone(cluster),
        Arc::clone(model),
        ParallelConfig::new(1, 2, 2),
        SchedulingPolicy::PrefillPrioritized,
    )
    .expect("valid config")
}

fn config(window_s: f64, warmup_s: f64, max: usize, router: RouterPolicy) -> AutoscaleConfig {
    AutoscaleConfig {
        window_s,
        warmup_s,
        min_replicas: 1,
        max_replicas: max,
        router,
        slo: SloSpec { ttft_s: 15.0, tpot_s: 0.05 },
        capacity_rps: 2.5,
    }
}

fn sharegpt_trace(n: usize, rate: f64, seed: u64) -> Vec<Request> {
    let base = WorkloadGen::sharegpt(seed).generate(n);
    ArrivalDist::Poisson { rate }
        .attach(&base, seed ^ seesaw_workload::ARRIVAL_SEED_SALT)
        .expect("valid arrivals")
}

/// A Static trajectory never scales, so the elastic run must collapse
/// onto the PR-4 fixed fleet *byte-for-byte* — same assignment, same
/// per-replica reports, same merged timeline and latency — for every
/// routing policy, including the RNG-carrying po2.
#[test]
fn static_policy_reproduces_the_fixed_fleet_byte_for_byte() {
    let (cluster, model) = specs();
    let reqs = sharegpt_trace(48, 3.0, 17);
    for router in RouterPolicy::all_default() {
        for n in [1usize, 3] {
            let fixed = Fleet::homogeneous(n, |_| {
                Box::new(vllm_engine(&cluster, &model)) as Box<dyn OnlineEngine>
            })
            .run_with(&SweepRunner::serial(), router, &reqs);
            let controller = AutoscaleController::new(
                config(10.0, 60.0, 8, router),
                ScalingPolicy::Static { n },
            );
            let elastic = controller.run_with(
                &SweepRunner::serial(),
                &|_| Box::new(vllm_engine(&cluster, &model)) as Box<dyn OnlineEngine>,
                &reqs,
            );
            assert!(elastic.events.is_empty(), "{router}: static must never scale");
            assert_eq!(
                elastic.fleet, fixed,
                "{router} x {n} replicas: elastic static diverged from the fixed fleet"
            );
        }
    }
}

/// Warm-up delays capacity, never adds it: on an overloaded trace, a
/// controller whose replicas warm up instantly must reach each scale-
/// up's *ready* state no later than one that pays a long warm-up, and
/// the long-warm-up run's overall SLO attainment must not beat the
/// instant one's by more than simulation noise.
#[test]
fn longer_warmup_never_improves_attainment() {
    let (cluster, model) = specs();
    let build = |_: usize| -> Box<dyn OnlineEngine> {
        Box::new(vllm_engine(&cluster, &model))
    };
    let reqs = sharegpt_trace(150, 5.0, 23);
    let run = |warmup_s: f64| {
        AutoscaleController::new(
            config(5.0, warmup_s, 8, RouterPolicy::JoinShortestQueue),
            ScalingPolicy::reactive_default(),
        )
        .run_with(&SweepRunner::serial(), &build, &reqs)
    };
    let instant = run(0.0);
    let slow = run(12.0);
    assert!(
        instant.events.iter().any(|e| e.to > e.from),
        "overloaded trace must trigger scale-ups"
    );
    // Same decision cadence, later readiness: every spawned replica's
    // ready time is strictly later under the longer warm-up.
    for (a, b) in instant.lifecycles.iter().zip(&slow.lifecycles).skip(1) {
        if a.spawn_s == b.spawn_s {
            assert!(b.ready_s > a.ready_s, "warm-up must delay readiness");
        }
    }
    assert!(
        slow.attainment() <= instant.attainment() + 0.02,
        "longer warm-up cannot improve attainment: {} (warm-up 12s) vs {} (instant)",
        slow.attainment(),
        instant.attainment()
    );
}

/// On a step trace (quiet, then a sustained surge), the cooldown
/// spaces scale events at least `cooldown + 1` windows apart and the
/// fleet ramps monotonically through the surge instead of flapping.
#[test]
fn cooldown_prevents_oscillation_on_a_step_trace() {
    let (cluster, model) = specs();
    let build = |_: usize| -> Box<dyn OnlineEngine> {
        Box::new(vllm_engine(&cluster, &model))
    };
    // 20 s of trickle, then a hard 6 rps surge for 60 s.
    let mut reqs: Vec<Request> = Vec::new();
    let mut gen = WorkloadGen::constant(512, 32);
    for (i, r) in gen.generate(4).into_iter().enumerate() {
        reqs.push(r.with_arrival(5.0 * i as f64));
    }
    let surge = gen.generate(360);
    for (i, r) in surge.into_iter().enumerate() {
        reqs.push(r.with_arrival(20.0 + i as f64 / 6.0));
    }
    let cooldown = 2usize;
    let window_s = 5.0;
    let policy = {
        let mut p = ScalingPolicy::reactive_default();
        if let ScalingPolicy::ReactiveThreshold { ref mut cooldown_windows, .. } = p {
            *cooldown_windows = cooldown;
        }
        p
    };
    let controller = AutoscaleController::new(
        config(window_s, 2.0, 8, RouterPolicy::JoinShortestQueue),
        policy,
    );
    let report = controller.run_with(&SweepRunner::serial(), &build, &reqs);
    let events: &Vec<ScaleEvent> = &report.events;
    assert!(events.len() >= 2, "the surge must drive several scale-ups: {events:?}");
    // Cooldown: consecutive events at least (cooldown + 1) windows
    // apart — one event window plus `cooldown` suppressed windows.
    for w in events.windows(2) {
        let gap = w[1].t_s - w[0].t_s;
        assert!(
            gap >= (cooldown + 1) as f64 * window_s - 1e-9,
            "events {w:?} closer than the cooldown allows"
        );
    }
    // No flapping: during the surge the replica count never shrinks.
    let surge_end = reqs.last().unwrap().arrival_s;
    for w in events.windows(2) {
        if w[1].t_s <= surge_end {
            assert!(
                w[1].to >= w[0].to,
                "fleet shrank mid-surge: {events:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary traces, rates, policies, and routing, the
    /// controller's full report — decision log, lifecycles, window
    /// signals, merged fleet report — is identical on 1 vs 4 jobs.
    #[test]
    fn controller_is_runner_invariant_for_arbitrary_traces(
        n in 1usize..80,
        seed in 0u64..200,
        rate in 0.2f64..12.0,
        cv in 0.3f64..2.5,
        warmup in 0.0f64..20.0,
        window in 2.0f64..30.0,
        policy_idx in 0usize..3,
    ) {
        let base: Vec<Request> = WorkloadGen::sharegpt(seed).generate(n);
        let reqs = ArrivalDist::Gamma { rate, cv }
            .attach(&base, seed ^ 0x5eed)
            .expect("valid");
        let policy = match policy_idx {
            0 => ScalingPolicy::Static { n: 2 },
            1 => ScalingPolicy::reactive_default(),
            _ => ScalingPolicy::target_utilization_default(),
        };
        let (cluster, model) = specs();
        let build = |_: usize| -> Box<dyn OnlineEngine> {
            Box::new(vllm_engine(&cluster, &model))
        };
        let controller = AutoscaleController::new(
            config(window, warmup, 6, RouterPolicy::JoinShortestQueue),
            policy,
        );
        let serial = controller.run_with(&SweepRunner::serial(), &build, &reqs);
        let parallel = controller.run_with(&SweepRunner::new(4), &build, &reqs);
        prop_assert_eq!(&serial, &parallel);
        // Every request served exactly once, whatever the trajectory.
        prop_assert_eq!(serial.fleet.timeline.len(), n);
        // Billed time covers at least the initial fleet's horizon.
        prop_assert!(serial.replica_seconds >= serial.horizon_s - 1e-9);
    }
}
