//! # Seesaw — high-throughput LLM inference via model re-sharding
//!
//! A simulation-backed, full-system reproduction of *"Seesaw:
//! High-throughput LLM Inference via Model Re-sharding"* (MLSys 2025).
//!
//! This facade crate re-exports every subsystem:
//!
//! * [`hw`] — GPU / interconnect / cluster cost models (paper Table 1).
//! * [`model`] — transformer architecture descriptions and accounting.
//! * [`parallel`] — TP/PP/DP configurations, shard maps, and the
//!   dynamic re-sharding planner.
//! * [`sim`] — the discrete-event simulation engine that stands in for
//!   physical GPUs.
//! * [`kv`] — paged GPU KV cache and the tiered CPU buffer.
//! * [`workload`] — dataset-like request generators and metrics.
//! * [`roofline`] — the analytical performance model (paper Appendix A).
//! * [`engine`] — the Seesaw engine plus vLLM-like and disaggregated
//!   baselines.
//! * [`autoscale`] — the elastic-fleet controller tier: trace-driven
//!   scaling policies over multi-replica deployments.
//!
//! # Quickstart
//!
//! ```
//! use seesaw::prelude::*;
//!
//! // An 8x A10 node running the 34B model on an arxiv-like workload.
//! let cluster = ClusterSpec::a10x8();
//! let model = ModelConfig::codellama_34b();
//! let mut gen = WorkloadGen::arxiv_summarization(42);
//! let requests = gen.generate(64);
//!
//! // Seesaw: pipeline-parallel prefill, tensor-parallel decode.
//! let spec = SeesawSpec::auto(&cluster, &model).expect("feasible config");
//! let report = SeesawEngine::new(cluster, model, spec)
//!     .expect("engine construction")
//!     .run(&requests);
//! assert!(report.throughput_rps() > 0.0);
//! ```

pub use seesaw_autoscale as autoscale;
pub use seesaw_engine as engine;
pub use seesaw_hw as hw;
pub use seesaw_kv as kv;
pub use seesaw_model as model;
pub use seesaw_parallel as parallel;
pub use seesaw_roofline as roofline;
pub use seesaw_sim as sim;
pub use seesaw_workload as workload;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use seesaw_engine::{
        disagg::DisaggEngine, seesaw::SeesawEngine, seesaw::SeesawSpec, vllm::VllmEngine,
        EngineReport, Phase, PhaseSpan, SchedulingPolicy,
    };
    pub use seesaw_hw::{ClusterSpec, GpuSpec, Interconnect};
    pub use seesaw_model::ModelConfig;
    pub use seesaw_parallel::ParallelConfig;
    pub use seesaw_roofline::{Roofline, Stage};
    pub use seesaw_workload::{Request, WorkloadGen};
}
