#!/usr/bin/env bash
# CI performance gate: build release, regenerate the sweep/sims
# benchmark, and fail when
#   * parallel figure output diverges from serial (determinism), or
#   * any sims/sec figure (seesaw, vllm, the online-serving
#     load-point rate "serving", the 4-replica-JSQ fleet grid-cell
#     rate "fleet", the same cell on the live-feedback global event
#     loop "fleet_live", the reactive-diurnal autoscale grid-cell
#     rate "autoscale", or the seeded-kill fault-injection grid-cell
#     rate "chaos") regresses >20% vs the committed BENCH_sweep.json.
#
# Usage: scripts/bench.sh [subsample] [--jobs N]
#   subsample defaults to 8 (the committed artifact's setting).
#
# The fresh artifact is written to target/BENCH_sweep.json; after a
# deliberate performance change, review it and copy it over the
# committed BENCH_sweep.json to move the baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p seesaw-bench --bin perf_report

./target/release/perf_report "$@" \
    --out target/BENCH_sweep.json \
    --baseline BENCH_sweep.json

echo "bench.sh: OK (fresh artifact at target/BENCH_sweep.json)"
