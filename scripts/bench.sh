#!/usr/bin/env bash
# CI performance gate: build release, regenerate the sweep/sims
# benchmark, and fail when
#   * parallel figure output diverges from serial (determinism), or
#   * any sims/sec figure (seesaw, vllm, the online-serving
#     load-point rate "serving", the 4-replica-JSQ fleet grid-cell
#     rate "fleet", the same cell on the live-feedback global event
#     loop "fleet_live", that cell with telemetry recording on
#     "fleet_live_traced", the reactive-diurnal autoscale grid-cell
#     rate "autoscale", the streaming-metrics pipeline rate
#     "autoscale_sketch" (sketch windows + burn-rate evaluation over
#     a precomputed day; also held to >= 1.5x "autoscale" inside
#     perf_report), or the seeded-kill fault-injection grid-cell
#     rate "chaos") regresses >20% vs the committed BENCH_sweep.json,
#   * the telemetry-disabled instrumented path costs >5% vs plain
#     fleet_live, or the controller self-profile explains <90% of
#     wall time (both checked inside perf_report), or
#   * the fleet bin's --trace-out export is not a well-formed
#     Perfetto document with the expected tracks, or
#   * the fleet bin's --metrics-out snapshot is not valid JSON
#     carrying the recorder's dropped-event health counters.
#
# Usage: scripts/bench.sh [subsample] [--jobs N]
#   subsample defaults to 8 (the committed artifact's setting).
#
# The fresh artifact is written to target/BENCH_sweep.json; after a
# deliberate performance change, review it and copy it over the
# committed BENCH_sweep.json to move the baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p seesaw-bench --bin perf_report --bin fleet

./target/release/perf_report "$@" \
    --out target/BENCH_sweep.json \
    --baseline BENCH_sweep.json

# Telemetry smoke test: export a small fleet trace plus its metric
# snapshot and validate both.
trace=target/fleet.trace.json
metrics=target/fleet.metrics.json
./target/release/fleet 16 --replicas 1 --loads 0.5 --no-hetero \
    --compare-replicas 2 --trace-out "$trace" --metrics-out "$metrics" > /dev/null

python3 - "$trace" "$metrics" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
tracks = [e for e in events if e.get("name") == "thread_name"]
# controller + router + 2 replica tracks from --compare-replicas 2.
assert len(tracks) == 4, f"expected 4 tracks, got {len(tracks)}"
assert any(e.get("ph") == "X" for e in events), "no spans recorded"
assert any(e.get("ph") == "i" for e in events), "no instants recorded"
print(f"bench.sh: trace OK ({len(events)} events, {len(tracks)} tracks)")
with open(sys.argv[2]) as f:
    snap = json.load(f)
for key in ("counters", "gauges", "histograms"):
    assert key in snap, f"metrics snapshot missing {key!r}"
for drop in ("telemetry.dropped_spans", "telemetry.dropped_instants"):
    assert drop in snap["counters"], f"missing health counter {drop!r}"
    assert snap["counters"][drop] == 0, f"{drop} nonzero on an uncapped run"
print(f"bench.sh: metrics OK ({len(snap['counters'])} counters)")
EOF

echo "bench.sh: OK (fresh artifact at target/BENCH_sweep.json)"
