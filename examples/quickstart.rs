//! Quickstart: run Seesaw on a simulated 8x A10 node and compare it
//! with the best static-parallelism baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use seesaw::prelude::*;

fn main() {
    // 1. Describe the deployment: hardware, model, workload.
    let cluster = ClusterSpec::a10x8();
    let model = ModelConfig::codellama_34b();
    let mut gen = WorkloadGen::arxiv_summarization(42);
    let requests = gen.generate(200);

    // 2. Tuned static baseline (vLLM-like): sweep configurations and
    //    keep the best.
    let (best_cfg, _) = seesaw::engine::autotune::best_static_config(&cluster, &model, 3000, 200)
        .expect("a feasible static configuration exists");
    let baseline = VllmEngine::new(
        cluster.clone(),
        model.clone(),
        best_cfg,
        SchedulingPolicy::PrefillPrioritized,
    )
    .expect("validated config")
    .run(&requests);

    // 3. Seesaw: pick (c_p, c_d) by probing, then run with dynamic
    //    model re-sharding + tiered KV buffering.
    let spec = SeesawSpec::auto_probed(&cluster, &model, &requests[..32])
        .expect("a feasible Seesaw pair exists");
    let seesaw = SeesawEngine::new(cluster, model, spec)
        .expect("validated spec")
        .run(&requests);

    // 4. Compare.
    println!("requests: {}", requests.len());
    println!(
        "vLLM-like baseline [{}]: {:.3} req/s  ({:.1}s total)",
        baseline.label,
        baseline.throughput_rps(),
        baseline.stats.duration_s
    );
    println!(
        "Seesaw            [{}]: {:.3} req/s  ({:.1}s total, {} re-shard transitions, {:.2}s re-sharding)",
        seesaw.label,
        seesaw.throughput_rps(),
        seesaw.stats.duration_s,
        seesaw.transitions,
        seesaw.reshard_wall_s
    );
    println!(
        "speedup: {:.2}x",
        seesaw.throughput_rps() / baseline.throughput_rps()
    );
}
