//! Timeline: visualize Seesaw's phase schedule as an ASCII Gantt
//! chart — the executable version of the paper's Figures 2 and 6
//! (prefill phases fill the CPU buffer, a re-shard flips the cluster,
//! decode drains it, repeat).
//!
//! A small CPU buffer is configured on purpose so several
//! prefill/decode cycles fit on screen.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use seesaw::prelude::*;

const WIDTH: usize = 100;

fn main() {
    let cluster = ClusterSpec::a10x4();
    let model = ModelConfig::codellama_34b();
    let mut gen = WorkloadGen::arxiv_summarization(5);
    let requests = gen.generate(120);

    let mut spec = SeesawSpec::new(
        "P4".parse().expect("valid label"),
        "T4".parse().expect("valid label"),
    );
    // ~30 prompts per cycle => several visible cycles.
    spec.buffer_tokens_override = Some(100_000);

    let report = SeesawEngine::new(cluster, model, spec)
        .expect("feasible")
        .run(&requests);

    let total = report.stats.duration_s;
    println!(
        "Seesaw {} | {} requests in {:.1}s ({:.3} req/s), {} transitions\n",
        report.label,
        report.stats.requests,
        total,
        report.throughput_rps(),
        report.transitions
    );

    // One lane per phase kind.
    for (name, phase) in [
        ("prefill", Phase::Prefill),
        ("reshard", Phase::Reshard),
        ("decode ", Phase::Decode),
    ] {
        let mut lane = vec![' '; WIDTH];
        for span in report.phases.iter().filter(|s| s.phase == phase) {
            let a = (span.start_s / total * WIDTH as f64) as usize;
            let b = ((span.end_s / total * WIDTH as f64) as usize).min(WIDTH - 1);
            let ch = match phase {
                Phase::Prefill => 'P',
                Phase::Reshard => 'R',
                Phase::Decode => 'D',
            };
            for c in lane.iter_mut().take(b + 1).skip(a) {
                *c = ch;
            }
        }
        println!("{name} |{}|", lane.iter().collect::<String>());
    }
    println!(
        "        0s{:>width$}",
        format!("{total:.0}s"),
        width = WIDTH - 1
    );

    println!("\nphase log:");
    for s in &report.phases {
        println!(
            "  {:>8.2}s - {:>8.2}s  {:<8} ({:.2}s)",
            s.start_s,
            s.end_s,
            s.phase.to_string(),
            s.duration()
        );
    }
}
