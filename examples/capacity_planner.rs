//! Capacity planner: a deployment-planning tool built on the public
//! API. Given a model, a GPU type, and workload statistics, it
//! enumerates every feasible parallelization, shows its memory plan
//! and analytic throughput, flags the infeasible ones, and recommends
//! a Seesaw `(c_p, c_d)` pair.
//!
//! ```sh
//! cargo run --release --example capacity_planner -- 70b a10 8
//! ```

use seesaw::model::presets;
use seesaw::parallel::{enumerate_configs, MemoryPlan};
use seesaw::prelude::*;
use seesaw::roofline::ThroughputModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model = presets::by_name(args.get(1).map(String::as_str).unwrap_or("70b"))
        .expect("model: one of 13b/15b/34b/70b");
    let gpu = GpuSpec::by_name(args.get(2).map(String::as_str).unwrap_or("a10"))
        .expect("gpu: one of a10/l4/a100/a100-pcie");
    let n: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
    let (avg_in, avg_out) = (3000usize, 250usize);

    let cluster = ClusterSpec::new(gpu, n);
    println!(
        "planning {} on {}x {} ({} weights, {} per-GPU memory)\n",
        model.name,
        cluster.num_gpus,
        cluster.gpu.name,
        seesaw::hw::ByteSize(model.weight_bytes_total()),
        cluster.gpu.mem()
    );

    let tm = ThroughputModel::new(Roofline::new(cluster.clone(), model.clone()));
    println!(
        "{:<10} {:>14} {:>14} {:>10} {:>12} {:>12}",
        "config", "weights/GPU", "KV tokens", "max batch", "prefill t/s", "decode st/s"
    );
    for cfg in enumerate_configs(&model, cluster.num_gpus) {
        match MemoryPlan::new(&model, &cluster, cfg) {
            Err(e) => println!("{:<10} INFEASIBLE: {e}", cfg.to_string()),
            Ok(plan) => {
                let prefill = tm.prefill_tokens_per_sec(cfg, avg_in, 4);
                let decode = tm
                    .decode_seq_steps_per_sec_max_batch(cfg, avg_in + avg_out / 2)
                    .unwrap_or(0.0);
                println!(
                    "{:<10} {:>14} {:>14} {:>10} {:>12.0} {:>12.0}",
                    cfg.to_string(),
                    seesaw::hw::ByteSize(plan.weight_bytes_per_gpu).to_string(),
                    plan.kv_tokens_total,
                    plan.max_batch(avg_in + avg_out),
                    prefill,
                    decode
                );
            }
        }
    }

    match SeesawSpec::auto_for(&cluster, &model, avg_in, avg_out) {
        Ok(spec) => println!(
            "\nrecommended Seesaw deployment: {} (prefill {} -> decode {})",
            spec.label(),
            spec.prefill,
            spec.decode
        ),
        Err(e) => println!("\nno feasible Seesaw deployment: {e}"),
    }
}
