//! Scheduler explorer: compare continuous-batching scheduling
//! policies on one static configuration, then show what Seesaw's
//! transition-minimizing schedule adds on top (paper Figure 2's
//! three-way comparison, executed end-to-end).
//!
//! ```sh
//! cargo run --release --example scheduler_explorer
//! ```

use seesaw::prelude::*;

fn main() {
    let cluster = ClusterSpec::a10x8();
    let model = ModelConfig::llama2_70b();
    let mut gen = WorkloadGen::sharegpt(11);
    let requests = gen.generate(400);
    let cfg: ParallelConfig = "T4P2".parse().expect("valid label");

    println!("70B on 8xA10, 400 sharegpt requests, static config {cfg}\n");
    println!(
        "{:<28} {:>9} {:>10} {:>9} {:>9}",
        "policy", "req/s", "prefill s", "mixed s", "decode s"
    );
    let policies = [
        SchedulingPolicy::PrefillPrioritized,
        SchedulingPolicy::DecodePrioritized,
        SchedulingPolicy::ChunkedPrefill { chunk_tokens: 512 },
        SchedulingPolicy::ChunkedPrefill { chunk_tokens: 2048 },
    ];
    for p in policies {
        let r = VllmEngine::new(cluster.clone(), model.clone(), cfg, p)
            .expect("feasible")
            .run(&requests);
        println!(
            "{:<28} {:>9.3} {:>10.1} {:>9.1} {:>9.1}",
            p.to_string(),
            r.throughput_rps(),
            r.prefill_wall_s,
            r.mixed_wall_s,
            r.decode_wall_s
        );
    }

    // Seesaw: transition-minimizing scheduling with re-sharding.
    let spec = SeesawSpec::auto_probed(&cluster, &model, &requests[..32]).expect("feasible");
    let r = SeesawEngine::new(cluster, model, spec).expect("validated").run(&requests);
    println!(
        "{:<28} {:>9.3} {:>10.1} {:>9.1} {:>9.1}   ({} transitions, {:.2}s re-sharding)",
        format!("seesaw {}", r.label),
        r.throughput_rps(),
        r.prefill_wall_s,
        0.0,
        r.decode_wall_s,
        r.transitions,
        r.reshard_wall_s
    );
}
