//! Offline batch summarization — the throughput-oriented workload the
//! paper's introduction motivates (information extraction, database
//! querying, knowledge-graph processing all share this shape: long
//! inputs, short outputs, no latency constraint).
//!
//! This example plans and executes a nightly summarization job of
//! 1000 documents on an 8x L4 node, reporting per-phase time, data
//! moved through the tiered KV buffer, and the GPU-hours saved versus
//! the tuned static baseline.
//!
//! ```sh
//! cargo run --release --example offline_summarization
//! ```

use seesaw::prelude::*;
use seesaw::workload::LengthStats;

fn main() {
    let cluster = ClusterSpec::l4x8();
    let model = ModelConfig::codellama_34b();

    // A nightly corpus: ~3k-token documents, ~200-token summaries.
    let mut gen = WorkloadGen::arxiv_summarization(7);
    let docs = gen.generate(1000);
    let stats = LengthStats::of(&docs);
    println!(
        "corpus: {} documents, mean {:.0} input / {:.0} output tokens",
        stats.count, stats.mean_input, stats.mean_output
    );

    // Baseline: tuned static configuration.
    let (cfg, _) = seesaw::engine::autotune::best_static_config(
        &cluster,
        &model,
        stats.mean_input as usize,
        stats.mean_output as usize,
    )
    .expect("feasible static config");
    let base = VllmEngine::new(
        cluster.clone(),
        model.clone(),
        cfg,
        SchedulingPolicy::ChunkedPrefill { chunk_tokens: 2048 },
    )
    .expect("validated")
    .run(&docs);

    // Seesaw.
    let spec = SeesawSpec::auto_probed(&cluster, &model, &docs[..32]).expect("feasible pair");
    let ours = SeesawEngine::new(cluster.clone(), model.clone(), spec)
        .expect("validated")
        .run(&docs);

    println!("\n--- job report ---");
    for r in [&base, &ours] {
        println!(
            "{:12} total {:7.1}s | prefill {:7.1}s  mixed {:7.1}s  decode {:7.1}s  reshard {:5.1}s",
            r.label, r.stats.duration_s, r.prefill_wall_s, r.mixed_wall_s, r.decode_wall_s,
            r.reshard_wall_s,
        );
    }
    println!(
        "\ntiered buffer traffic: {:.1} GiB out, {:.1} GiB in ({} transitions)",
        ours.swap_out_bytes as f64 / (1u64 << 30) as f64,
        ours.swap_in_bytes as f64 / (1u64 << 30) as f64,
        ours.transitions
    );

    let gpu_hours_base = base.stats.duration_s * cluster.num_gpus as f64 / 3600.0;
    let gpu_hours_ours = ours.stats.duration_s * cluster.num_gpus as f64 / 3600.0;
    println!(
        "GPU-hours: baseline {gpu_hours_base:.2}, seesaw {gpu_hours_ours:.2} ({:.0}% saved)",
        100.0 * (1.0 - gpu_hours_ours / gpu_hours_base)
    );
    println!(
        "speedup: {:.2}x",
        ours.throughput_rps() / base.throughput_rps()
    );
}
